"""Tests for the comparison systems (in-memory, DistGNN sim, mini-batch)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    DistGNNSimulator,
    FullGraphTrainer,
    InMemoryMultiGPUTrainer,
    MiniBatchTrainer,
    NeighborSampler,
)
from repro.core.memory_model import estimate_for_model
from repro.errors import ConfigurationError, DeviceOutOfMemoryError
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import (
    A100_SERVER,
    CPU_NODE,
    MultiGPUPlatform,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("products_sim", scale=0.1, seed=4)


def make_model(graph, arch="gcn", layers=2, hidden=16, seed=0):
    dims = [graph.feature_dim] + [hidden] * (layers - 1) + [graph.num_classes]
    return build_model(arch, dims, np.random.default_rng(seed))


class TestFullGraphTrainer:
    def test_loss_decreases(self, graph):
        trainer = FullGraphTrainer(graph, make_model(graph))
        losses = [trainer.train_epoch().loss for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_oom_on_small_gpu(self, graph):
        model = make_model(graph)
        estimate = estimate_for_model(graph.num_vertices, graph.num_edges,
                                      model)
        tiny = MultiGPUPlatform(
            A100_SERVER.with_gpu_memory(estimate.total_bytes // 2)
        )
        with pytest.raises(DeviceOutOfMemoryError):
            FullGraphTrainer(graph, model, platform=tiny)

    def test_fits_on_big_gpu(self, graph):
        platform = MultiGPUPlatform(A100_SERVER)
        trainer = FullGraphTrainer(graph, make_model(graph),
                                   platform=platform)
        result = trainer.train_epoch()
        assert result.epoch_seconds > 0
        assert result.peak_gpu_bytes > 0

    def test_requires_matching_dims(self, graph):
        model = build_model("gcn", [3, 2], np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            FullGraphTrainer(graph, model)


class TestInMemoryTrainer:
    def test_oom_on_big_graph_small_gpus(self):
        graph = load_dataset("friendster_sim", scale=0.2, seed=1)
        model = make_model(graph)
        estimate = estimate_for_model(graph.num_vertices, graph.num_edges,
                                      model)
        platform = MultiGPUPlatform(
            A100_SERVER.with_gpu_memory(estimate.total_bytes // 16)
        )
        with pytest.raises(DeviceOutOfMemoryError):
            InMemoryMultiGPUTrainer(graph, model, platform)

    def test_epoch_faster_than_single_gpu(self, graph):
        """4-way compute split must beat 1 GPU on kernel time."""
        model = make_model(graph)
        multi = InMemoryMultiGPUTrainer(
            graph, make_model(graph), MultiGPUPlatform(A100_SERVER)
        )
        single = FullGraphTrainer(
            graph, model, platform=MultiGPUPlatform(A100_SERVER)
        )
        multi_result = multi.train_epoch()
        single_result = single.train_epoch()
        assert multi_result.clock.seconds["gpu"] < \
            single_result.clock.seconds["gpu"]

    def test_d2d_traffic_present(self, graph):
        trainer = InMemoryMultiGPUTrainer(
            graph, make_model(graph), MultiGPUPlatform(A100_SERVER)
        )
        assert trainer.train_epoch().clock.seconds["d2d"] > 0


class TestDistGNN:
    def test_compute_scales_with_nodes(self, graph):
        model = make_model(graph)
        single = DistGNNSimulator(graph, model, CPU_NODE)
        cluster = DistGNNSimulator(graph, model,
                                   CPU_NODE.with_num_nodes(16))
        assert cluster.train_epoch().clock.seconds["cpu"] < \
            single.train_epoch().clock.seconds["cpu"]

    def test_multi_node_faster_in_compute_bound_regime(self):
        """The paper's regime: a locality-heavy graph (low cut) + wide
        model -> compute dominates the network term and the cluster beats
        one node."""
        graph = load_dataset("it2004_sim", scale=0.5, seed=1)
        dims = [graph.feature_dim, 256, 256, graph.num_classes]
        model = build_model("gcn", dims, np.random.default_rng(0))
        single = DistGNNSimulator(graph, model, CPU_NODE)
        cluster = DistGNNSimulator(graph, model,
                                   CPU_NODE.with_num_nodes(16))
        assert cluster.train_epoch().epoch_seconds < \
            single.train_epoch().epoch_seconds

    def test_cpu_slower_than_gpu(self, graph):
        """The >10x GPU-over-CPU gap of Table 5."""
        model = make_model(graph)
        cpu = DistGNNSimulator(graph, model, CPU_NODE)
        gpu = FullGraphTrainer(graph, make_model(graph),
                               platform=MultiGPUPlatform(A100_SERVER))
        cpu_seconds = cpu.train_epoch().epoch_seconds
        gpu_seconds = gpu.train_epoch().clock.seconds["gpu"]
        assert cpu_seconds > 10 * gpu_seconds

    def test_oom_on_small_nodes(self):
        graph = load_dataset("friendster_sim", scale=0.2, seed=1)
        model = make_model(graph, arch="gat", layers=3)
        estimate = estimate_for_model(graph.num_vertices, graph.num_edges,
                                      model)
        import dataclasses
        tiny_cluster = dataclasses.replace(
            CPU_NODE.with_num_nodes(4),
            memory_per_node=estimate.total_bytes // 8,
        )
        with pytest.raises(DeviceOutOfMemoryError):
            DistGNNSimulator(graph, model, tiny_cluster)

    def test_hourly_cost(self, graph):
        cluster = DistGNNSimulator(graph, make_model(graph),
                                   CPU_NODE.with_num_nodes(16))
        assert np.isclose(cluster.hourly_cost_usd(), 16 * 5.24)


class TestNeighborSampler:
    def test_block_count_matches_fanouts(self, graph):
        sampler = NeighborSampler(graph, [5, 5], seed=0)
        seeds = np.arange(10)
        blocks = sampler.sample(seeds)
        assert len(blocks) == 2

    def test_final_dst_are_seeds(self, graph):
        sampler = NeighborSampler(graph, [5, 5], seed=0)
        seeds = np.array([3, 7, 11])
        blocks = sampler.sample(seeds)
        np.testing.assert_array_equal(blocks[-1].dst_global,
                                      np.unique(seeds))

    def test_fanout_bound(self, graph):
        fanout = 4
        sampler = NeighborSampler(graph, [fanout], seed=0)
        blocks = sampler.sample(np.arange(20))
        degrees = blocks[0].in_degrees()
        assert degrees.max() <= fanout

    def test_frontier_grows_with_layers(self, graph):
        seeds = np.arange(8)
        one_layer = NeighborSampler(graph, [10], seed=0).sample(seeds)
        three_layer = NeighborSampler(graph, [10, 10, 10], seed=0).sample(seeds)
        assert three_layer[0].num_src > one_layer[0].num_src

    def test_invalid_fanout(self, graph):
        with pytest.raises(ConfigurationError):
            NeighborSampler(graph, [0])

    @given(st.integers(1, 6), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_blocks_are_consistent(self, fanout, num_layers):
        graph = load_dataset("products_sim", scale=0.1, seed=4)
        sampler = NeighborSampler(graph, [fanout] * num_layers, seed=1)
        blocks = sampler.sample(np.arange(5))
        # Chaining: block l's src set equals block l+1's... frontier
        # relationship: sources of block l+1 are the dst of block l.
        for lower, upper in zip(blocks[:-1], blocks[1:]):
            np.testing.assert_array_equal(lower.dst_global,
                                          upper.src_global)
        for block in blocks:
            # Every edge's source is a valid row and dst self-rows exist.
            assert np.all(block.edge_src < block.num_src)
            np.testing.assert_array_equal(
                block.src_global[block.dst_pos], block.dst_global
            )


class TestMiniBatchTrainer:
    def test_trains_and_loss_decreases(self, graph):
        trainer = MiniBatchTrainer(
            graph, make_model(graph), MultiGPUPlatform(A100_SERVER),
            fanout=5, batch_size=64,
        )
        first = trainer.train_epoch().loss
        for _ in range(5):
            last = trainer.train_epoch().loss
        assert last < first

    def test_requires_train_mask(self):
        from repro.graph import Graph
        g = Graph(np.array([0]), np.array([1]), 2,
                  features=np.ones((2, 4)), labels=np.array([0, 1]))
        model = build_model("gcn", [4, 2], np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            MiniBatchTrainer(g, model, MultiGPUPlatform(A100_SERVER))

    def test_neighbor_explosion_in_time(self, graph):
        """Deeper models cost superlinearly more (Table 6's DistDGL rows).

        Small batches keep the frontier well below |V| so the geometric
        growth is visible before saturation.
        """
        shallow = MiniBatchTrainer(
            graph, make_model(graph, layers=1),
            MultiGPUPlatform(A100_SERVER), fanout=5, batch_size=16,
        )
        deep = MiniBatchTrainer(
            graph, make_model(graph, layers=3),
            MultiGPUPlatform(A100_SERVER), fanout=5, batch_size=16,
        )
        shallow_result = shallow.train_epoch()
        deep_result = deep.train_epoch()
        assert deep_result.frontier_vertices > \
            2 * shallow_result.frontier_vertices
        assert deep_result.epoch_seconds > 2 * shallow_result.epoch_seconds

    def test_oom_with_tiny_gpu_and_deep_model(self, graph):
        model = make_model(graph, layers=3)
        tiny = MultiGPUPlatform(A100_SERVER.with_gpu_memory(32 * 1024))
        trainer = MiniBatchTrainer(graph, model, tiny, fanout=10,
                                   batch_size=256)
        with pytest.raises(DeviceOutOfMemoryError):
            trainer.train_epoch()

    def test_evaluate_keys(self, graph):
        trainer = MiniBatchTrainer(
            graph, make_model(graph), MultiGPUPlatform(A100_SERVER),
            fanout=5, batch_size=64,
        )
        metrics = trainer.evaluate()
        assert "val_accuracy" in metrics

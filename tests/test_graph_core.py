"""Tests for the Graph property container, generators, datasets and IO."""

import os

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    available_datasets,
    gaussian_features,
    load_dataset,
    load_graph,
    locality_web_graph,
    planted_partition,
    random_split_masks,
    rmat,
    save_graph,
    toy_graph,
    PAPER_PROFILES,
)


class TestGraph:
    def test_basic_construction(self):
        g = Graph(np.array([0, 1]), np.array([1, 2]), 3)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_in_csr_orientation(self):
        g = Graph(np.array([0]), np.array([1]), 2)
        np.testing.assert_array_equal(g.in_csr.row(1), [0])
        np.testing.assert_array_equal(g.in_csr.row(0), [])

    def test_out_csr(self):
        g = Graph(np.array([0, 0]), np.array([1, 2]), 3)
        np.testing.assert_array_equal(g.out_csr.row(0), [1, 2])

    def test_degrees(self):
        g = Graph(np.array([0, 1, 2]), np.array([1, 1, 1]), 3)
        np.testing.assert_array_equal(g.in_degrees(), [0, 3, 0])
        np.testing.assert_array_equal(g.out_degrees(), [1, 1, 1])

    def test_edge_arrays_roundtrip(self):
        src = np.array([0, 2, 1])
        dst = np.array([1, 0, 2])
        g = Graph(src, dst, 3)
        src2, dst2 = g.edge_arrays()
        g2 = Graph(src2, dst2, 3)
        assert g.in_csr == g2.in_csr

    def test_feature_shape_validation(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([0]), np.array([1]), 2,
                  features=np.ones((3, 4)))

    def test_label_shape_validation(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([0]), np.array([1]), 2, labels=np.zeros(5))

    def test_mask_shape_validation(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([0]), np.array([1]), 2,
                  train_mask=np.ones(3, dtype=bool))

    def test_feature_dim_requires_features(self):
        g = Graph(np.array([0]), np.array([1]), 2)
        with pytest.raises(GraphFormatError):
            _ = g.feature_dim

    def test_num_classes(self):
        g = Graph(np.array([0]), np.array([1]), 2,
                  labels=np.array([0, 4]))
        assert g.num_classes == 5

    def test_gcn_weights_positive_and_bounded(self):
        g = load_dataset("it2004_sim", scale=0.1)
        weights = g.gcn_edge_weights()
        assert len(weights) == g.num_edges
        assert np.all(weights > 0)
        assert np.all(weights <= 1.0)

    def test_gcn_weights_formula(self):
        # single edge 0 -> 1: w = 1/sqrt((out_deg(0)+1)(in_deg(1)+1)) = 1/2
        g = Graph(np.array([0]), np.array([1]), 2)
        np.testing.assert_allclose(g.gcn_edge_weights(), [0.5])

    def test_subgraph_stats(self):
        stats = toy_graph().subgraph_stats()
        assert stats["num_vertices"] == 8
        assert stats["num_edges"] == 17


class TestGenerators:
    def test_rmat_shapes(self):
        src, dst = rmat(64, 500, seed=0)
        assert len(src) == len(dst)
        assert src.max() < 64 and dst.max() < 64

    def test_rmat_no_self_loops(self):
        src, dst = rmat(64, 500, seed=0)
        assert np.all(src != dst)

    def test_rmat_deterministic(self):
        a = rmat(64, 200, seed=5)
        b = rmat(64, 200, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_rmat_skewed_degrees(self):
        src, _ = rmat(512, 8000, seed=1)
        degrees = np.bincount(src, minlength=512)
        assert degrees.max() > 4 * max(degrees.mean(), 1)

    def test_rmat_invalid_probs(self):
        with pytest.raises(GraphFormatError):
            rmat(16, 10, seed=0, a=0.5, b=0.3, c=0.3)

    def test_locality_web_graph_is_local(self):
        src, dst = locality_web_graph(1024, 8000, seed=0,
                                      locality=0.9, window=32)
        local_fraction = (np.abs(src - dst) <= 32).mean()
        assert local_fraction > 0.7

    def test_locality_web_graph_no_self_loops(self):
        src, dst = locality_web_graph(256, 1000, seed=0)
        assert np.all(src != dst)

    def test_planted_partition_homophily(self):
        src, dst, comm = planted_partition(500, 5, 20.0, mixing=0.1, seed=0)
        same = (comm[src] == comm[dst]).mean()
        assert same > 0.7

    def test_planted_partition_mixing_one_is_random(self):
        src, dst, comm = planted_partition(500, 5, 20.0, mixing=1.0, seed=0)
        same = (comm[src] == comm[dst]).mean()
        assert same < 0.4

    def test_planted_partition_invalid_mixing(self):
        with pytest.raises(GraphFormatError):
            planted_partition(100, 4, 5.0, mixing=1.5, seed=0)

    def test_gaussian_features_separable(self):
        comm = np.repeat(np.arange(4), 50)
        features = gaussian_features(comm, 16, seed=0, noise_scale=0.1)
        centroid_distance = np.linalg.norm(
            features[comm == 0].mean(0) - features[comm == 1].mean(0)
        )
        assert centroid_distance > 1.0

    def test_split_masks_disjoint_cover(self):
        train, val, test = random_split_masks(1000, seed=0)
        assert not np.any(train & val)
        assert not np.any(train & test)
        assert not np.any(val & test)
        assert np.all(train | val | test)

    def test_split_fractions(self):
        train, val, test = random_split_masks(1000, seed=0,
                                              train_fraction=0.25,
                                              val_fraction=0.5,
                                              test_fraction=0.25)
        assert train.sum() == 250
        assert val.sum() == 500

    def test_split_must_sum_to_one(self):
        with pytest.raises(GraphFormatError):
            random_split_masks(100, seed=0, train_fraction=0.5,
                               val_fraction=0.5, test_fraction=0.5)


class TestDatasets:
    def test_registry_lists_five(self):
        assert len(available_datasets()) == 5

    @pytest.mark.parametrize("name", available_datasets())
    def test_all_load(self, name):
        g = load_dataset(name, scale=0.05)
        assert g.num_vertices > 0
        assert g.num_edges > 0
        assert g.features is not None
        assert g.labels is not None
        assert g.train_mask is not None
        assert g.scale_profile is not None

    def test_unknown_name(self):
        with pytest.raises(GraphFormatError):
            load_dataset("imaginary")

    def test_caching_returns_same_object(self):
        a = load_dataset("reddit_sim", scale=0.05)
        b = load_dataset("reddit_sim", scale=0.05)
        assert a is b

    def test_scale_changes_size(self):
        small = load_dataset("friendster_sim", scale=0.05)
        large = load_dataset("friendster_sim", scale=0.2)
        assert large.num_vertices > small.num_vertices

    def test_paper_profiles_match_table4(self):
        assert PAPER_PROFILES["it-2004"].num_vertices == 41_000_000
        assert PAPER_PROFILES["ogbn-paper"].num_edges == 1_600_000_000
        assert PAPER_PROFILES["reddit"].feature_dim == 602
        assert PAPER_PROFILES["friendster"].num_labels == 64

    def test_replication_factors_present_for_big_graphs(self):
        assert PAPER_PROFILES["it-2004"].replication_factors[512] == 1.85
        assert PAPER_PROFILES["friendster"].replication_factors[2] == 1.32

    def test_toy_graph_matches_figure2(self):
        g = toy_graph()
        np.testing.assert_array_equal(g.in_csr.row(0), [1, 3])
        np.testing.assert_array_equal(g.in_csr.row(3), [2, 5, 6])
        np.testing.assert_array_equal(g.in_csr.row(7), [2, 3, 6])


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = load_dataset("products_sim", scale=0.05)
        path = os.path.join(tmp_path, "graph.npz")
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.in_csr == g.in_csr
        np.testing.assert_array_equal(loaded.features, g.features)
        np.testing.assert_array_equal(loaded.labels, g.labels)
        np.testing.assert_array_equal(loaded.train_mask, g.train_mask)
        assert loaded.name == g.name

    def test_roundtrip_without_properties(self, tmp_path):
        g = Graph(np.array([0, 1]), np.array([1, 0]), 2, name="bare")
        path = os.path.join(tmp_path, "bare.npz")
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.features is None
        assert loaded.labels is None

    def test_missing_file(self):
        with pytest.raises(GraphFormatError):
            load_graph("/nonexistent/path.npz")

"""Tests for Module/Parameter containers, Linear, init, and optimizers."""

import numpy as np
import pytest

from repro.autograd import Linear, Module, Parameter, SGD, Adam, Tensor, init, ops
from repro.errors import AutogradError, ConfigurationError


class TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(4, 8, rng)
        self.second = Linear(8, 2, rng)

    def forward(self, x):
        return self.second(ops.relu(self.first(x)))


class WithList(Module):
    def __init__(self, rng):
        super().__init__()
        self.layers = [Linear(3, 3, rng) for _ in range(2)]
        self.scale = Parameter(np.ones(1), name="scale")


class TestModuleTraversal:
    def test_named_parameters_nested(self, rng):
        model = TwoLayer(rng)
        names = [name for name, _ in model.named_parameters()]
        assert names == ["first.weight", "first.bias",
                         "second.weight", "second.bias"]

    def test_parameters_in_lists(self, rng):
        model = WithList(rng)
        names = [name for name, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names
        assert "scale" in names

    def test_num_parameters(self, rng):
        model = TwoLayer(rng)
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_parameter_nbytes(self, rng):
        model = TwoLayer(rng)
        assert model.parameter_nbytes() == model.num_parameters() * 8

    def test_modules_iterates_children(self, rng):
        model = TwoLayer(rng)
        assert len(list(model.modules())) == 3

    def test_train_eval_propagates(self, rng):
        model = TwoLayer(rng)
        model.eval()
        assert not model.first.training
        model.train()
        assert model.second.training


class TestStateDict:
    def test_roundtrip(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        other = TwoLayer(np.random.default_rng(99))
        other.load_state_dict(state)
        for key, value in other.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_state_dict_copies(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.all(model.first.weight.data == 0.0)

    def test_missing_key_raises(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        del state["first.bias"]
        with pytest.raises(AutogradError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(AutogradError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(AutogradError):
            model.load_state_dict(state)

    def test_zero_grad(self, rng):
        model = TwoLayer(rng)
        out = model(Tensor(np.ones((2, 4))))
        out.backward(np.ones((2, 2)))
        assert model.first.weight.grad is not None
        model.zero_grad()
        assert model.first.weight.grad is None


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(3, 5, rng)
        assert layer(Tensor(np.ones((7, 3)))).shape == (7, 5)

    def test_no_bias(self, rng):
        layer = Linear(3, 5, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_math(self, rng):
        layer = Linear(2, 2, rng)
        layer.weight.data = np.eye(2)
        layer.bias.data = np.array([1.0, -1.0])
        out = layer(Tensor(np.array([[2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[3.0, 2.0]])

    def test_flops(self, rng):
        layer = Linear(3, 5, rng)
        assert layer.flops(10) == 2 * 10 * 3 * 5


class TestInit:
    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((200, 200), rng)
        assert abs(w.std() - np.sqrt(2.0 / 400)) < 1e-3

    def test_kaiming_bound(self, rng):
        w = init.kaiming_uniform((50, 60), rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 50))

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0.0)

    def test_uniform_range(self, rng):
        w = init.uniform((100,), rng, low=-0.5, high=0.5)
        assert w.min() >= -0.5 and w.max() <= 0.5

    def test_determinism(self):
        a = init.xavier_uniform((4, 4), np.random.default_rng(5))
        b = init.xavier_uniform((4, 4), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


def quadratic_loss(param):
    # f(w) = sum((w - 3)^2); minimum at w == 3.
    diff = ops.sub(param, Tensor(np.full_like(param.data, 3.0)))
    return ops.sum_(ops.mul(diff, diff))


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(4))
        optimizer = SGD([w], lr=0.1)
        for _ in range(100):
            w.zero_grad()
            quadratic_loss(w).backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-6)

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.zeros(1))
        w_momentum = Parameter(np.zeros(1))
        plain = SGD([w_plain], lr=0.01)
        momentum = SGD([w_momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            for w, opt in ((w_plain, plain), (w_momentum, momentum)):
                w.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
        assert abs(w_momentum.data[0] - 3.0) < abs(w_plain.data[0] - 3.0)

    def test_weight_decay_shrinks(self):
        w = Parameter(np.ones(1) * 10.0)
        optimizer = SGD([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(1)
        optimizer.step()
        assert w.data[0] < 10.0

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.ones(2))
        SGD([w], lr=0.1).step()
        np.testing.assert_array_equal(w.data, np.ones(2))

    def test_invalid_lr(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)

    def test_empty_params(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(4))
        optimizer = Adam([w], lr=0.2)
        for _ in range(200):
            w.zero_grad()
            quadratic_loss(w).backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-3)

    def test_bias_correction_first_step(self):
        # With bias correction the very first step is ~lr in magnitude.
        w = Parameter(np.zeros(1))
        optimizer = Adam([w], lr=0.1)
        w.grad = np.ones(1)
        optimizer.step()
        assert abs(abs(w.data[0]) - 0.1) < 1e-6

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_weight_decay(self):
        w = Parameter(np.ones(1) * 5.0)
        optimizer = Adam([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(1)
        optimizer.step()
        assert w.data[0] < 5.0

    def test_zero_grad_helper(self):
        w = Parameter(np.ones(1))
        w.grad = np.ones(1)
        optimizer = Adam([w])
        optimizer.zero_grad()
        assert w.grad is None

"""Tests for the simulated hardware: memory pools, clock, platform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeviceOutOfMemoryError
from repro.hardware import (
    A100_SERVER,
    CPU_NODE,
    ECS_CLUSTER,
    GB,
    MemoryPool,
    MultiGPUPlatform,
    PCIE_ONLY_SERVER,
    TimeBreakdown,
    scaled_platform,
)


class TestMemoryPool:
    def test_alloc_free_cycle(self):
        pool = MemoryPool(100, "gpu")
        allocation = pool.alloc("x", 60)
        assert pool.in_use == 60
        allocation.free()
        assert pool.in_use == 0

    def test_oom(self):
        pool = MemoryPool(100, "gpu")
        pool.alloc("x", 90)
        with pytest.raises(DeviceOutOfMemoryError) as info:
            pool.alloc("y", 20)
        assert info.value.requested == 20
        assert info.value.in_use == 90
        assert info.value.capacity == 100
        assert "gpu" in str(info.value)

    def test_exact_fit(self):
        pool = MemoryPool(100, "gpu")
        pool.alloc("x", 100)
        assert pool.available() == 0

    def test_peak_tracks_high_water(self):
        pool = MemoryPool(100, "gpu")
        a = pool.alloc("x", 80)
        a.free()
        pool.alloc("y", 30)
        assert pool.peak == 80
        assert pool.in_use == 30

    def test_reset_peak(self):
        pool = MemoryPool(100, "gpu")
        a = pool.alloc("x", 80)
        a.free()
        pool.reset_peak()
        assert pool.peak == 0

    def test_unlimited(self):
        pool = MemoryPool(None, "host")
        pool.alloc("x", 10 ** 15)
        assert pool.available() is None

    def test_double_free_is_noop(self):
        pool = MemoryPool(100, "gpu")
        a = pool.alloc("x", 50)
        a.free()
        a.free()
        assert pool.in_use == 0

    def test_scoped(self):
        pool = MemoryPool(100, "gpu")
        with pool.scoped("x", 70):
            assert pool.in_use == 70
        assert pool.in_use == 0

    def test_scoped_frees_on_exception(self):
        pool = MemoryPool(100, "gpu")
        with pytest.raises(ValueError), pool.scoped("x", 70):
            raise ValueError("boom")
        assert pool.in_use == 0

    def test_resize_grow_and_shrink(self):
        pool = MemoryPool(100, "gpu")
        a = pool.alloc("x", 40)
        a.resize(90)
        assert pool.in_use == 90
        a.resize(10)
        assert pool.in_use == 10

    def test_resize_oom(self):
        pool = MemoryPool(100, "gpu")
        a = pool.alloc("x", 40)
        with pytest.raises(DeviceOutOfMemoryError):
            a.resize(200)

    def test_resize_shrink_updates_by_tag(self):
        pool = MemoryPool(100, "gpu")
        a = pool.alloc("x", 40)
        a.resize(10)
        assert pool.by_tag["x"] == 10
        a.free()
        assert pool.by_tag["x"] == 0
        assert pool.in_use == 0

    def test_by_tag_accounting(self):
        pool = MemoryPool(100, "gpu")
        pool.alloc("weights", 30)
        pool.alloc("weights", 20)
        assert pool.by_tag["weights"] == 50

    def test_negative_alloc_rejected(self):
        pool = MemoryPool(100, "gpu")
        with pytest.raises(ValueError):
            pool.alloc("x", -1)

    def test_utilization(self):
        pool = MemoryPool(200, "gpu")
        pool.alloc("x", 50)
        assert pool.utilization() == 0.25


class TestTimeBreakdown:
    def test_add_and_total(self):
        clock = TimeBreakdown()
        clock.add("gpu", 1.0)
        clock.add("h2d", 2.0)
        assert clock.total == 3.0

    def test_unknown_category(self):
        with pytest.raises(ConfigurationError):
            TimeBreakdown().add("alien", 1.0)

    def test_negative_time(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("gpu", -1.0)

    def test_parallel_phase_takes_max(self):
        clock = TimeBreakdown()
        clock.add_parallel_phase("d2d", [1.0, 5.0, 2.0])
        assert clock.seconds["d2d"] == 5.0

    def test_parallel_phase_empty(self):
        clock = TimeBreakdown()
        clock.add_parallel_phase("d2d", [])
        assert clock.total == 0.0

    def test_merge(self):
        a = TimeBreakdown()
        a.add("gpu", 1.0)
        b = TimeBreakdown()
        b.add("gpu", 2.0)
        b.add("cpu", 1.0)
        a.merge(b)
        assert a.seconds["gpu"] == 3.0
        assert a.seconds["cpu"] == 1.0

    def test_scaled(self):
        clock = TimeBreakdown()
        clock.add("gpu", 2.0)
        doubled = clock.scaled(2.0)
        assert doubled.seconds["gpu"] == 4.0
        assert clock.seconds["gpu"] == 2.0

    def test_as_dict_copy(self):
        clock = TimeBreakdown()
        d = clock.as_dict()
        d["gpu"] = 99.0
        assert clock.seconds["gpu"] == 0.0


class TestPlatform:
    def test_gpu_count_default(self):
        platform = MultiGPUPlatform(A100_SERVER)
        assert platform.num_gpus == 4
        assert len(platform.gpus) == 4

    def test_gpu_count_override(self):
        platform = MultiGPUPlatform(A100_SERVER, num_gpus=2)
        assert platform.num_gpus == 2

    def test_too_many_gpus(self):
        with pytest.raises(ConfigurationError):
            MultiGPUPlatform(A100_SERVER, num_gpus=8)

    def test_socket_assignment(self):
        platform = MultiGPUPlatform(A100_SERVER)
        assert [gpu.socket for gpu in platform.gpus] == [0, 0, 1, 1]

    def test_numa_aware_default(self):
        # > 2 GPUs -> NUMA-aware placement possible (paper §7.6).
        assert MultiGPUPlatform(A100_SERVER, num_gpus=4).numa_aware
        assert not MultiGPUPlatform(A100_SERVER, num_gpus=2).numa_aware

    def test_numa_penalty_slows_h2d(self):
        aware = MultiGPUPlatform(A100_SERVER, num_gpus=4)
        unaware = MultiGPUPlatform(A100_SERVER, num_gpus=2)
        assert unaware.h2d_seconds(GB) > aware.h2d_seconds(GB)

    def test_transfer_cost_ordering(self):
        """T_ru > T_dd > T_hd on the NVLink platform (paper §5.3)."""
        platform = MultiGPUPlatform(A100_SERVER)
        nbytes = GB
        assert platform.reuse_seconds(nbytes) < platform.d2d_seconds(nbytes)
        assert platform.d2d_seconds(nbytes) < platform.h2d_seconds(nbytes)

    def test_pcie_only_has_equal_t_dd_t_hd(self):
        platform = MultiGPUPlatform(PCIE_ONLY_SERVER, numa_aware=True)
        assert np.isclose(platform.d2d_seconds(GB), platform.h2d_seconds(GB))

    def test_throughputs_triple(self):
        platform = MultiGPUPlatform(A100_SERVER)
        t_hd, t_dd, t_ru = platform.throughputs()
        assert t_hd < t_dd < t_ru

    def test_compute_seconds(self):
        platform = MultiGPUPlatform(A100_SERVER)
        assert platform.gpu_compute_seconds(A100_SERVER.gpu.compute_flops) \
            == 1.0

    def test_reset_memory(self):
        platform = MultiGPUPlatform(A100_SERVER)
        platform.gpus[0].memory.alloc("x", 100)
        platform.reset_memory()
        assert platform.gpus[0].memory.in_use == 0

    def test_peak_gpu_memory(self):
        platform = MultiGPUPlatform(A100_SERVER)
        platform.gpus[2].memory.alloc("x", 12345)
        assert platform.peak_gpu_memory() == 12345


class TestSpecs:
    def test_scaled_platform(self):
        small = scaled_platform(A100_SERVER, 1e-6)
        assert small.gpu.memory_bytes == int(80 * GB * 1e-6)
        assert small.pcie_bandwidth == A100_SERVER.pcie_bandwidth

    def test_with_gpu_memory(self):
        spec = A100_SERVER.with_gpu_memory(123)
        assert spec.gpu.memory_bytes == 123
        assert A100_SERVER.gpu.memory_bytes == 80 * GB  # frozen original

    def test_with_num_gpus(self):
        assert A100_SERVER.with_num_gpus(2).num_gpus == 2

    def test_cluster_scaling(self):
        assert ECS_CLUSTER.num_nodes == 16
        assert CPU_NODE.with_num_nodes(3).num_nodes == 3

    def test_nvlink_faster_than_pcie(self):
        assert A100_SERVER.nvlink_bandwidth > A100_SERVER.pcie_bandwidth

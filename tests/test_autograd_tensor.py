"""Unit tests for the autograd Tensor and tape machinery."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled, ops
from repro.errors import AutogradError


class TestTensorConstruction:
    def test_wraps_array(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.size == 6
        assert t.ndim == 2

    def test_default_no_grad(self):
        assert not Tensor(np.ones(3)).requires_grad

    def test_requires_grad_flag(self):
        assert Tensor(np.ones(3), requires_grad=True).requires_grad

    def test_integer_payload_cannot_require_grad(self):
        with pytest.raises(AutogradError):
            Tensor(np.arange(3), requires_grad=True)

    def test_integer_payload_as_constant_ok(self):
        t = Tensor(np.arange(3))
        assert t.dtype == np.int64

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert Tensor.as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = Tensor.as_tensor(3.0)
        assert t.item() == 3.0

    def test_detach_shares_data(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_nbytes(self):
        t = Tensor(np.ones((4, 4), dtype=np.float64))
        assert t.nbytes() == 128

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))

    def test_len(self):
        assert len(Tensor(np.ones((5, 2)))) == 5


class TestBackward:
    def test_scalar_backward_default_seed(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        y = ops.mul(x, x)
        y.backward()
        assert np.isclose(x.grad, 4.0)

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = ops.mul(x, x)
        with pytest.raises(AutogradError):
            y.backward()

    def test_backward_with_explicit_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = ops.mul(x, Tensor(np.array([1.0, 2.0, 3.0])))
        y.backward(np.ones(3))
        assert np.allclose(x.grad, [1.0, 2.0, 3.0])

    def test_backward_on_leaf_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(AutogradError):
            x.backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array(3.0), requires_grad=True)
        y = ops.add(ops.mul(x, x), x)  # x^2 + x
        y.backward()
        assert np.isclose(x.grad, 7.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array(1.0), requires_grad=True)
        for _ in range(3):
            ops.mul(x, Tensor(np.array(2.0))).backward()
        assert np.isclose(x.grad, 6.0)

    def test_zero_grad(self):
        x = Tensor(np.array(1.0), requires_grad=True)
        ops.mul(x, x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_shape_mismatch_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            x.accumulate_grad(np.ones(4))

    def test_deep_chain_no_recursion_error(self):
        # Iterative topological sort must handle very deep tapes.
        x = Tensor(np.array(1.0), requires_grad=True)
        y = x
        for _ in range(5000):
            y = ops.add(y, Tensor(np.array(0.001)))
        y.backward()
        assert np.isclose(x.grad, 1.0)

    def test_diamond_dependency(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        a = ops.mul(x, x)
        b = ops.add(x, x)
        y = ops.mul(a, b)  # x^2 * 2x = 2x^3 -> dy/dx = 6x^2 = 24
        y.backward()
        assert np.isclose(x.grad, 24.0)


class TestNoGrad:
    def test_flag_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_ops_produce_leaves(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = ops.mul(x, x)
        assert not y.requires_grad

    def test_new_tensors_inside_no_grad(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad

    def test_restored_after_exception(self):
        with pytest.raises(ValueError, match="boom"), no_grad():
            raise ValueError("boom")
        assert is_grad_enabled()


class TestOperatorSugar:
    def test_add_operator(self):
        x = Tensor(np.array(1.0), requires_grad=True)
        (x + 2.0).backward()
        assert np.isclose(x.grad, 1.0)

    def test_radd(self):
        x = Tensor(np.array(1.0), requires_grad=True)
        (2.0 + x).backward()
        assert np.isclose(x.grad, 1.0)

    def test_sub_and_rsub(self):
        x = Tensor(np.array(3.0), requires_grad=True)
        (x - 1.0).backward()
        assert np.isclose(x.grad, 1.0)
        x.zero_grad()
        (1.0 - x).backward()
        assert np.isclose(x.grad, -1.0)

    def test_mul_div(self):
        x = Tensor(np.array(4.0), requires_grad=True)
        (x / 2.0).backward()
        assert np.isclose(x.grad, 0.5)

    def test_neg(self):
        x = Tensor(np.array(4.0), requires_grad=True)
        (-x).backward()
        assert np.isclose(x.grad, -1.0)

    def test_pow(self):
        x = Tensor(np.array(3.0), requires_grad=True)
        (x ** 2).backward()
        assert np.isclose(x.grad, 6.0)

    def test_matmul_operator(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 2)))
        out = a @ b
        assert out.shape == (2, 2)

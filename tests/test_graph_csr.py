"""Tests for CSR adjacency structures, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphFormatError
from repro.graph.csr import CSRAdjacency, edges_to_csr


def simple_csr():
    # rows: 0 -> {1, 2}, 1 -> {}, 2 -> {0}
    return CSRAdjacency(np.array([0, 2, 2, 3]), np.array([1, 2, 0]), 3)


class TestValidation:
    def test_valid_structure(self):
        csr = simple_csr()
        assert csr.num_rows == 3
        assert csr.nnz == 3

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRAdjacency(np.array([1, 2]), np.array([0]), 2)

    def test_indptr_monotone(self):
        with pytest.raises(GraphFormatError):
            CSRAdjacency(np.array([0, 2, 1]), np.array([0, 1]), 2)

    def test_indptr_matches_nnz(self):
        with pytest.raises(GraphFormatError):
            CSRAdjacency(np.array([0, 5]), np.array([0, 1]), 2)

    def test_column_range(self):
        with pytest.raises(GraphFormatError):
            CSRAdjacency(np.array([0, 1]), np.array([7]), 3)

    def test_negative_column(self):
        with pytest.raises(GraphFormatError):
            CSRAdjacency(np.array([0, 1]), np.array([-1]), 3)

    def test_values_length(self):
        with pytest.raises(GraphFormatError):
            CSRAdjacency(np.array([0, 1]), np.array([0]), 2,
                         values=np.array([1.0, 2.0]))


class TestAccessors:
    def test_row(self):
        csr = simple_csr()
        np.testing.assert_array_equal(csr.row(0), [1, 2])
        np.testing.assert_array_equal(csr.row(1), [])
        np.testing.assert_array_equal(csr.row(2), [0])

    def test_degrees(self):
        np.testing.assert_array_equal(simple_csr().degrees(), [2, 0, 1])

    def test_row_values_none_when_unweighted(self):
        assert simple_csr().row_values(0) is None

    def test_row_values(self):
        csr = CSRAdjacency(np.array([0, 2]), np.array([0, 1]), 2,
                           values=np.array([0.5, 1.5]))
        np.testing.assert_array_equal(csr.row_values(0), [0.5, 1.5])

    def test_row_slice(self):
        csr = simple_csr()
        sliced = csr.row_slice(0, 2)
        assert sliced.num_rows == 2
        np.testing.assert_array_equal(sliced.row(0), [1, 2])
        np.testing.assert_array_equal(sliced.row(1), [])

    def test_row_slice_invalid(self):
        with pytest.raises(GraphFormatError):
            simple_csr().row_slice(2, 1)

    def test_to_scipy(self):
        mat = simple_csr().to_scipy()
        assert mat.shape == (3, 3)
        assert mat.nnz == 3

    def test_nbytes_positive(self):
        assert simple_csr().nbytes() > 0

    def test_equality(self):
        assert simple_csr() == simple_csr()

    def test_inequality_values(self):
        a = CSRAdjacency(np.array([0, 1]), np.array([0]), 1,
                         values=np.array([1.0]))
        b = CSRAdjacency(np.array([0, 1]), np.array([0]), 1)
        assert a != b

    def test_repr(self):
        assert "nnz=3" in repr(simple_csr())


class TestTranspose:
    def test_simple(self):
        t = simple_csr().transpose()
        # original edges: (0,1), (0,2), (2,0) -> transposed (1,0), (2,0), (0,2)
        np.testing.assert_array_equal(t.row(0), [2])
        np.testing.assert_array_equal(t.row(1), [0])
        np.testing.assert_array_equal(t.row(2), [0])

    def test_preserves_nnz(self):
        t = simple_csr().transpose()
        assert t.nnz == 3
        assert t.num_rows == 3


class TestEdgesToCsr:
    def test_basic(self):
        csr = edges_to_csr(np.array([0, 0, 1]), np.array([1, 2, 0]), 2, 3)
        np.testing.assert_array_equal(csr.row(0), [1, 2])
        np.testing.assert_array_equal(csr.row(1), [0])

    def test_dedup_merges(self):
        csr = edges_to_csr(np.array([0, 0]), np.array([1, 1]), 1, 2)
        assert csr.nnz == 1

    def test_dedup_sums_values(self):
        csr = edges_to_csr(np.array([0, 0]), np.array([1, 1]), 1, 2,
                           values=np.array([2.0, 3.0]))
        assert csr.values[0] == 5.0

    def test_no_dedup(self):
        csr = edges_to_csr(np.array([0, 0]), np.array([1, 1]), 1, 2,
                           dedup=False)
        assert csr.nnz == 2

    def test_out_of_range_rows(self):
        with pytest.raises(GraphFormatError):
            edges_to_csr(np.array([5]), np.array([0]), 2, 2)

    def test_mismatched_shapes(self):
        with pytest.raises(GraphFormatError):
            edges_to_csr(np.array([0, 1]), np.array([0]), 2, 2)

    def test_empty(self):
        csr = edges_to_csr(np.array([]), np.array([]), 3, 3)
        assert csr.nnz == 0
        assert csr.num_rows == 3


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    num_edges = draw(st.integers(min_value=0, max_value=60))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=num_edges,
                         max_size=num_edges))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=num_edges,
                         max_size=num_edges))
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64)


class TestProperties:
    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_transpose_is_involution(self, data):
        n, rows, cols = data
        csr = edges_to_csr(rows, cols, n, n)
        assert csr.transpose().transpose() == csr

    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_transpose_preserves_edge_multiset(self, data):
        n, rows, cols = data
        csr = edges_to_csr(rows, cols, n, n)
        t = csr.transpose()
        edges = set()
        for row_index in range(csr.num_rows):
            for col in csr.row(row_index):
                edges.add((row_index, int(col)))
        transposed = set()
        for row_index in range(t.num_rows):
            for col in t.row(row_index):
                transposed.add((int(col), row_index))
        assert edges == transposed

    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_degrees_sum_to_nnz(self, data):
        n, rows, cols = data
        csr = edges_to_csr(rows, cols, n, n)
        assert csr.degrees().sum() == csr.nnz

    @given(random_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_rows_sorted_and_unique(self, data):
        n, rows, cols = data
        csr = edges_to_csr(rows, cols, n, n)
        for row_index in range(csr.num_rows):
            row = csr.row(row_index)
            assert np.all(np.diff(row) > 0) or len(row) <= 1


def _sorted_rows_reference(csr):
    """The pre-vectorization per-row Python loop (kept as a test oracle)."""
    indices = csr.indices.copy()
    values = None if csr.values is None else csr.values.copy()
    for i in range(csr.num_rows):
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        order = np.argsort(indices[lo:hi], kind="stable")
        indices[lo:hi] = indices[lo:hi][order]
        if values is not None:
            values[lo:hi] = values[lo:hi][order]
    return CSRAdjacency(csr.indptr, indices, csr.num_cols, values)


class TestVectorizedSorting:
    """The np.lexsort rewrite of _sorted_rows/transpose (preprocessing)."""

    def _build_unsorted(self, seed=0):
        """(sorted reference, within-row-shuffled weighted copy) of the
        reddit_sim in-CSR — realistic preprocessing input."""
        from repro.graph import load_dataset

        graph = load_dataset("reddit_sim", scale=0.3, seed=3)
        csr = graph.in_csr
        rng = np.random.default_rng(seed)
        indices = csr.indices.copy()
        values = rng.standard_normal(csr.nnz)
        for i in range(csr.num_rows):
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            perm = rng.permutation(hi - lo)
            indices[lo:hi] = indices[lo:hi][perm]
        shuffled = CSRAdjacency(csr.indptr, indices, csr.num_cols, values)
        return csr, shuffled

    def test_sorted_rows_matches_reference(self):
        sorted_csr, shuffled = self._build_unsorted()
        vectorized = shuffled._sorted_rows()
        reference = _sorted_rows_reference(shuffled)
        np.testing.assert_array_equal(vectorized.indices, reference.indices)
        np.testing.assert_allclose(vectorized.values, reference.values)
        np.testing.assert_array_equal(vectorized.indices, sorted_csr.indices)

    def test_transpose_round_trip_weighted(self):
        _, shuffled = self._build_unsorted(seed=1)
        back = shuffled.transpose().transpose()
        expected = shuffled._sorted_rows()
        np.testing.assert_array_equal(back.indptr, expected.indptr)
        np.testing.assert_array_equal(back.indices, expected.indices)
        np.testing.assert_allclose(back.values, expected.values)

    def test_preprocessing_faster_than_row_loop(self):
        """Micro-benchmark: lexsort beats the per-row argsort loop on the
        reddit_sim workload (the satellite's 'faster, not slower' gate)."""
        import time

        _, shuffled = self._build_unsorted(seed=2)

        def best_of(fn, repeats=3):
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
            return min(samples)

        vectorized = best_of(shuffled._sorted_rows)
        loop = best_of(lambda: _sorted_rows_reference(shuffled))
        assert vectorized < loop, (
            f"vectorized _sorted_rows ({vectorized:.4f}s) slower than "
            f"the row loop ({loop:.4f}s)"
        )

"""Tests for the partition-level placement subsystem.

Covers the explicit partition→node map (validation + block default), the
partition-granularity halo matrices (they must aggregate to the node-pair
halo analyses for *any* placement), the placement search invariants
(every partition assigned exactly once, nodes balanced within ±1 GPU,
searched cost never above the block cost, strict improvement on skewed
orderings, determinism), the platform plumbing (``node_of`` /
``local_rank`` / ``node_gpus`` under arbitrary placements), the
executor-vs-static byte contract under a permuted placement, and the
trainer-level acceptance (numerics placement-independent; ``nodes=1``
float-identical under both policies).
"""

import numpy as np
import pytest

from repro.autograd import SGD
from repro.comm import DedupCommunicator, build_comm_plan
from repro.comm.cost_model import ClusterCostModel
from repro.core import HongTuConfig, HongTuTrainer
from repro.errors import ConfigurationError, PartitionError
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import (
    A100_CLUSTER,
    A100_SERVER,
    ClusterPlatform,
    MultiGPUPlatform,
    NetworkTopology,
    TimeBreakdown,
)
from repro.partition import (
    PLACEMENT_POLICIES,
    halo_load_volumes,
    halo_volumes,
    partition_halo_matrix,
    partition_load_matrix,
    partition_nodes,
    permute_partitions,
    placement_net_rows,
    search_placement,
    two_level_partition,
)

NODES = 2
GPUS = 4
M = NODES * GPUS
#: round-robin relabeling: scatters the METIS ordering's contiguous
#: locality across both node blocks, making the block placement skewed
SKEW = np.array([0, 2, 4, 6, 1, 3, 5, 7])


@pytest.fixture(scope="module")
def graph():
    return load_dataset("reddit_sim", scale=0.12, seed=3)


@pytest.fixture(scope="module")
def partition(graph):
    return two_level_partition(graph, M, 4, seed=0)


@pytest.fixture(scope="module")
def skewed(partition):
    return permute_partitions(partition, SKEW)


class TestPartitionNodesPlacement:
    def test_block_default_unchanged(self):
        assert partition_nodes(8, 2).tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_explicit_placement_returned_as_copy(self):
        placement = np.array([1, 0, 0, 1, 0, 1, 1, 0])
        out = partition_nodes(8, 2, placement)
        assert out.tolist() == placement.tolist()
        out[0] = 0
        assert placement[0] == 1  # caller's array untouched

    def test_wrong_length_rejected(self):
        with pytest.raises(PartitionError):
            partition_nodes(8, 2, np.zeros(7, dtype=np.int64))

    def test_out_of_range_node_rejected(self):
        with pytest.raises(PartitionError):
            partition_nodes(8, 2, np.array([0, 0, 0, 0, 1, 1, 1, 2]))
        with pytest.raises(PartitionError):
            partition_nodes(8, 2, np.array([0, 0, 0, 0, 1, 1, 1, -1]))

    def test_unbalanced_placement_rejected(self):
        with pytest.raises(PartitionError):
            partition_nodes(8, 2, np.array([0, 0, 0, 0, 0, 1, 1, 1]))


class TestHaloMatrices:
    @pytest.mark.parametrize("placement", [
        None,
        np.array([1, 0, 0, 1, 0, 1, 0, 1]),
        np.array([1, 1, 0, 0, 1, 0, 0, 1]),
    ])
    def test_fetch_matrix_aggregates_to_halo_volumes(self, partition,
                                                     placement):
        matrix = partition_halo_matrix(partition)
        node_map = partition_nodes(M, NODES, placement)
        expected = halo_volumes(partition, NODES, placement)
        aggregated = np.zeros((NODES, NODES), dtype=np.int64)
        for k in range(M):
            for i in range(M):
                if node_map[k] != node_map[i]:
                    aggregated[node_map[k], node_map[i]] += matrix[k, i]
        assert (aggregated == expected).all()

    @pytest.mark.parametrize("placement", [
        None,
        np.array([1, 0, 0, 1, 0, 1, 0, 1]),
    ])
    def test_load_matrix_aggregates_to_halo_load_volumes(self, partition,
                                                         placement):
        matrix = partition_load_matrix(partition)
        node_map = partition_nodes(M, NODES, placement)
        expected = halo_load_volumes(partition, NODES, placement)
        aggregated = np.zeros((NODES, NODES), dtype=np.int64)
        for k in range(M):
            for i in range(M):
                if node_map[k] != node_map[i]:
                    aggregated[node_map[k], node_map[i]] += matrix[k, i]
        assert (aggregated == expected).all()

    def test_net_rows_matches_reorganization_counting(self, partition):
        expected = (int(halo_volumes(partition, NODES).sum())
                    + 2 * int(halo_load_volumes(partition, NODES).sum()))
        assert placement_net_rows(partition, NODES) == expected

    def test_diagonals_are_zero(self, partition):
        assert np.diagonal(partition_halo_matrix(partition)).sum() == 0
        assert np.diagonal(partition_load_matrix(partition)).sum() == 0


class TestSearchPlacement:
    def test_policies_constant(self):
        assert PLACEMENT_POLICIES == ("block", "search", "joint")

    def test_every_partition_assigned_exactly_once(self, skewed):
        result = search_placement(skewed, NODES)
        assert result.placement.shape == (M,)
        assert result.placement.dtype == np.int64
        assert set(result.placement.tolist()) <= set(range(NODES))

    def test_nodes_balanced_within_one_gpu(self, skewed):
        result = search_placement(skewed, NODES)
        counts = np.bincount(result.placement, minlength=NODES)
        assert counts.max() - counts.min() <= 1
        # the search preserves the exact m/N balance, in fact
        assert (counts == GPUS).all()

    def test_searched_cost_never_above_block_cost(self, skewed, partition):
        model = ClusterCostModel.from_cluster(A100_CLUSTER)
        for part in (skewed, partition):
            result = search_placement(part, NODES, cluster_model=model,
                                      row_bytes=512)
            assert result.rows_search <= result.rows_block
            assert result.cost_search <= result.cost_block
            assert result.rows_saved == (result.rows_block
                                         - result.rows_search)

    def test_strict_improvement_on_skewed_ordering(self, skewed):
        result = search_placement(skewed, NODES)
        assert result.improved
        assert result.rows_search < result.rows_block
        assert result.swaps > 0
        # the reported rows are the real objective values
        assert placement_net_rows(skewed, NODES) == result.rows_block
        assert placement_net_rows(skewed, NODES, result.placement) \
            == result.rows_search

    def test_search_is_deterministic(self, skewed):
        first = search_placement(skewed, NODES)
        second = search_placement(skewed, NODES)
        assert first.placement.tolist() == second.placement.tolist()
        assert first.rows_search == second.rows_search

    def test_single_node_is_trivial(self, graph):
        partition = two_level_partition(graph, GPUS, 4, seed=0)
        result = search_placement(partition, 1)
        assert result.placement.tolist() == [0] * GPUS
        assert result.rows_block == result.rows_search == 0
        assert result.swaps == 0

    def test_seed_placement_is_refined_not_regressed(self, skewed):
        """Searching from an explicit seed reports the seed's objective
        as the baseline and never ends worse than it — so a trainer
        seeded with a caller-installed placement cannot regress it."""
        custom = np.array([1, 0, 0, 1, 0, 1, 0, 1])
        seeded = search_placement(skewed, NODES, seed_placement=custom)
        assert seeded.rows_block \
            == placement_net_rows(skewed, NODES, custom)
        assert seeded.rows_search <= seeded.rows_block
        # an already-optimal seed is returned unchanged
        best = search_placement(skewed, NODES)
        again = search_placement(skewed, NODES,
                                 seed_placement=best.placement)
        assert again.rows_search <= best.rows_search

    def test_collective_term_is_placement_invariant(self, skewed):
        model = ClusterCostModel.from_cluster(A100_CLUSTER)
        bare = search_placement(skewed, NODES, cluster_model=model,
                                row_bytes=512)
        with_legs = search_placement(skewed, NODES, cluster_model=model,
                                     row_bytes=512,
                                     allreduce_bytes=1 << 20)
        assert with_legs.placement.tolist() == bare.placement.tolist()
        legs = model.allreduce_seconds(float(1 << 20))
        assert with_legs.cost_search == pytest.approx(
            bare.cost_search + legs
        )


class TestPermutePartitions:
    def test_permuted_partition_is_valid(self, skewed):
        skewed.validate()

    def test_identity_perm_preserves_grid(self, partition):
        same = permute_partitions(partition, np.arange(M))
        assert (same.assignment == partition.assignment).all()
        for i in range(M):
            for j in range(partition.num_chunks):
                assert (same.chunks[i][j].dst_global
                        == partition.chunks[i][j].dst_global).all()

    def test_relabeling_moves_rows(self, partition, skewed):
        assert (skewed.chunks[1][0].dst_global
                == partition.chunks[SKEW[1]][0].dst_global).all()
        vertex = partition.chunks[SKEW[1]][0].dst_global[0]
        assert skewed.assignment[vertex] == 1

    def test_invalid_perm_rejected(self, partition):
        with pytest.raises(PartitionError):
            permute_partitions(partition, np.array([0, 1]))
        with pytest.raises(PartitionError):
            permute_partitions(partition, np.zeros(M, dtype=np.int64))


class TestPlatformPlacement:
    def test_default_is_block(self):
        platform = ClusterPlatform(A100_CLUSTER)
        assert platform.placement.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [platform.node_of(i) for i in range(8)] \
            == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [platform.local_rank(i) for i in range(8)] \
            == [0, 1, 2, 3, 0, 1, 2, 3]
        assert platform.node_gpus(1) == [4, 5, 6, 7]

    def test_custom_placement_rewires_node_map(self):
        placement = np.array([1, 0, 0, 1, 0, 1, 1, 0])
        platform = ClusterPlatform(A100_CLUSTER, placement=placement)
        assert [platform.node_of(i) for i in range(8)] \
            == placement.tolist()
        assert platform.node_gpus(0) == [1, 2, 4, 7]
        assert platform.node_gpus(1) == [0, 3, 5, 6]
        # local rank is the rank within the node's ascending GPU list
        assert platform.local_rank(4) == 2
        assert platform.local_rank(0) == 0
        assert platform.local_rank(6) == 3
        # pseudo-devices still map to node 0
        assert platform.node_of(-1) == 0

    def test_set_placement_none_restores_block(self):
        platform = ClusterPlatform(A100_CLUSTER,
                                   placement=[1, 0, 0, 1, 0, 1, 1, 0])
        platform.set_placement(None)
        assert platform.placement.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_invalid_placements_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterPlatform(A100_CLUSTER, placement=[0, 0, 0, 0, 1, 1, 1])
        with pytest.raises(ConfigurationError):
            ClusterPlatform(A100_CLUSTER,
                            placement=[0, 0, 0, 0, 0, 1, 1, 1])
        with pytest.raises(ConfigurationError):
            ClusterPlatform(A100_CLUSTER,
                            placement=[0, 0, 0, 0, 1, 1, 1, 2])

    def test_single_node_platform_accessors(self):
        platform = MultiGPUPlatform(A100_SERVER)
        assert platform.node_gpus(0) == [0, 1, 2, 3]
        assert platform.local_rank(2) == 2
        with pytest.raises(ConfigurationError):
            platform.node_gpus(1)


def _sweep(partition, platform, dedup_inter, dim=16):
    """One forward+backward layer sweep; returns the communicator."""
    plan = build_comm_plan(partition, dedup_inter=dedup_inter,
                           dedup_intra=True)
    comm = DedupCommunicator(plan, platform, 4)
    host = np.zeros((partition.graph.num_vertices, dim))
    grads = np.zeros_like(host)
    clock = TimeBreakdown()
    comm.start_sweep(dim)
    for j in range(plan.num_batches):
        outputs = comm.load_batch_forward(j, host, clock)
        comm.accumulate_batch_backward(
            j, [out.copy() for out in outputs], grads, clock)
    comm.end_sweep()
    return comm


class TestExecutorPlacementContract:
    """The acceptance contract: the executor's measured per-flow bytes
    equal the placement model's prediction byte-for-byte under an
    arbitrary (permuted) placement."""

    PLACEMENT = np.array([1, 0, 0, 1, 0, 1, 0, 1])

    def test_fetch_bytes_match_halo_volumes(self, skewed):
        platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(NODES),
                                   placement=self.PLACEMENT)
        comm = _sweep(skewed, platform, dedup_inter=True)
        expected = halo_volumes(skewed, NODES, self.PLACEMENT)
        measured = comm.net_bytes_by_flow["halo_fetch"]
        row_bytes = 16 * 4
        for s in range(NODES):
            for d in range(NODES):
                assert measured.get((s, d), 0) == expected[s, d] * row_bytes

    def test_load_bytes_match_halo_load_volumes(self, skewed):
        platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(NODES),
                                   placement=self.PLACEMENT)
        comm = _sweep(skewed, platform, dedup_inter=False)
        expected = halo_load_volumes(skewed, NODES, self.PLACEMENT)
        measured = comm.net_bytes_by_flow["halo_load"]
        row_bytes = 16 * 4
        for s in range(NODES):
            for d in range(NODES):
                assert measured.get((s, d), 0) == expected[s, d] * row_bytes

    def test_searched_placement_ships_fewer_fetch_bytes(self, skewed):
        """Under full dedup the network carries the fetch/push halo —
        exactly the F term of the search objective, so the searched
        placement's measured fetch traffic must strictly beat block's
        on the skewed ordering."""
        result = search_placement(skewed, NODES)
        assert result.improved
        block = _sweep(
            skewed, ClusterPlatform(A100_CLUSTER), dedup_inter=True)
        searched = _sweep(
            skewed,
            ClusterPlatform(A100_CLUSTER, placement=result.placement),
            dedup_inter=True)
        block_fetch = sum(block.net_bytes_by_flow["halo_fetch"].values())
        searched_fetch = sum(
            searched.net_bytes_by_flow["halo_fetch"].values())
        assert searched_fetch < block_fetch

    def test_rail_routing_under_custom_placement(self, skewed):
        topology = NetworkTopology("rail")
        cluster = A100_CLUSTER.with_num_nodes(NODES) \
            .with_topology(topology)
        platform = ClusterPlatform(cluster, placement=self.PLACEMENT)
        comm = _sweep(skewed, platform, dedup_inter=True)
        # same bytes as the flat fabric (routing, not volume, changes)
        flat = _sweep(
            skewed,
            ClusterPlatform(A100_CLUSTER.with_num_nodes(NODES),
                            placement=self.PLACEMENT),
            dedup_inter=True)
        assert comm.bytes_moved["net"] == flat.bytes_moved["net"]


def _make_trainer(graph, platform, placement_policy, overlap="pipeline"):
    topology = platform.topology
    model = build_model("gcn", [graph.feature_dim, 12, graph.num_classes],
                        np.random.default_rng(11))
    return HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=4, overlap=overlap,
                     nodes=platform.num_nodes, topology=topology.kind,
                     oversubscription=topology.oversubscription,
                     placement=placement_policy, seed=2),
        optimizer=SGD(model.parameters(), lr=0.02),
    )


class TestTrainerPlacement:
    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            HongTuConfig(placement="random")

    def test_search_on_spine_cluster(self, graph):
        topology = NetworkTopology("spine", oversubscription=4.0)
        cluster = A100_CLUSTER.with_num_nodes(NODES) \
            .with_topology(topology)
        block = _make_trainer(graph, ClusterPlatform(cluster), "block")
        search = _make_trainer(graph, ClusterPlatform(cluster), "search")
        result_block = block.train_epoch()
        result_search = search.train_epoch()
        placed = search.placement_result
        assert placed is not None
        assert placed.rows_search <= placed.rows_block
        assert placed.cost_search <= placed.cost_block
        # the platform routes with the searched assignment
        assert search.platform.placement.tolist() \
            == search.placement.tolist()
        # numerics are placement-independent up to float addition order
        # (the net-aware reorganization may adopt a different schedule
        # under the searched placement, which reorders summations)
        np.testing.assert_allclose(block.logits(), search.logits(),
                                   rtol=0, atol=1e-12)
        result_block.timeline.validate()
        result_search.timeline.validate()

    def test_numerics_bit_identical_without_reorganization(self, graph):
        """With a fixed schedule the placement changes routing only, so
        parameters are bit-identical across placement policies."""
        def state(policy):
            model = build_model(
                "gcn", [graph.feature_dim, 12, graph.num_classes],
                np.random.default_rng(11))
            trainer = HongTuTrainer(
                graph, model, ClusterPlatform(A100_CLUSTER),
                HongTuConfig(num_chunks=4, nodes=NODES, placement=policy,
                             reorganize=False, seed=2),
                optimizer=SGD(model.parameters(), lr=0.02))
            trainer.train_epoch()
            return model.state_dict()

        block, search = state("block"), state("search")
        for key in block:
            assert np.array_equal(block[key], search[key]), key

    def test_block_policy_leaves_platform_unchanged(self, graph):
        platform = ClusterPlatform(A100_CLUSTER)
        trainer = _make_trainer(graph, platform, "block")
        assert trainer.placement_result is None
        assert trainer.placement.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        assert platform.placement.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_single_node_search_is_float_identical(self, graph):
        def epoch(policy):
            model = build_model(
                "gcn", [graph.feature_dim, 12, graph.num_classes],
                np.random.default_rng(11))
            trainer = HongTuTrainer(
                graph, model, MultiGPUPlatform(A100_SERVER),
                HongTuConfig(num_chunks=4, placement=policy, seed=2),
                optimizer=SGD(model.parameters(), lr=0.02))
            return trainer.train_epoch()

        assert epoch("block").epoch_seconds == epoch("search").epoch_seconds

    def test_search_preprocessing_time_is_charged(self, graph):
        cluster = A100_CLUSTER.with_num_nodes(NODES)
        trainer = _make_trainer(graph, ClusterPlatform(cluster), "search")
        assert trainer.placement_result.seconds > 0
        assert trainer.preprocessing_seconds \
            >= trainer.placement_result.seconds

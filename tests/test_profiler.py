"""Tests for the epoch profiler."""

import numpy as np
import pytest

from repro.core import HongTuConfig, HongTuTrainer
from repro.core.profiler import EpochProfiler
from repro.errors import ConfigurationError
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform, TimeBreakdown


class FakeResult:
    def __init__(self, gpu=1.0, h2d=2.0):
        self.clock = TimeBreakdown()
        self.clock.add("gpu", gpu)
        self.clock.add("h2d", h2d)
        self.epoch_seconds = self.clock.total


class TestProfilerUnit:
    def test_record_and_summary(self):
        profiler = EpochProfiler()
        profiler.record("a", FakeResult())
        profiler.record("a", FakeResult())
        summary = profiler.summary("a")
        assert summary.epochs == 2
        assert summary.totals["gpu"] == 2.0
        assert summary.totals["h2d"] == 4.0
        assert summary.mean_epoch_seconds == 3.0

    def test_share(self):
        profiler = EpochProfiler()
        profiler.record("a", FakeResult(gpu=1.0, h2d=3.0))
        assert profiler.summary("a").share("h2d") == 0.75

    def test_share_unknown_category(self):
        profiler = EpochProfiler()
        profiler.record("a", FakeResult())
        with pytest.raises(ConfigurationError):
            profiler.summary("a").share("warp")

    def test_unknown_label(self):
        with pytest.raises(ConfigurationError):
            EpochProfiler().summary("missing")

    def test_record_rejects_clockless(self):
        with pytest.raises(ConfigurationError):
            EpochProfiler().record("a", object())

    def test_empty_comparison(self):
        with pytest.raises(ConfigurationError):
            EpochProfiler().comparison_table()

    def test_comparison_table_contents(self):
        profiler = EpochProfiler()
        profiler.record("slow", FakeResult(gpu=2.0, h2d=6.0))
        profiler.record("fast", FakeResult(gpu=1.0, h2d=1.0))
        table = profiler.comparison_table(baseline="slow")
        assert "slow" in table and "fast" in table
        assert "4.00x" in table  # 8s vs 2s epochs


class TestProfilerIntegration:
    def test_profile_real_trainer_ladder(self):
        graph = load_dataset("papers_sim", scale=0.12, seed=2)
        profiler = EpochProfiler()
        for mode in ["baseline", "hongtu"]:
            model = build_model(
                "gcn", [graph.feature_dim, 16, graph.num_classes],
                np.random.default_rng(0),
            )
            trainer = HongTuTrainer(
                graph, model, MultiGPUPlatform(A100_SERVER),
                HongTuConfig(num_chunks=6, comm_mode=mode, seed=0),
            )
            profiler.record_run(mode, trainer.train(2))
        table = profiler.comparison_table(baseline="baseline")
        assert "baseline" in table and "hongtu" in table
        # Dedup spends less time on H2D than the baseline.
        assert profiler.summary("hongtu").totals["h2d"] < \
            profiler.summary("baseline").totals["h2d"]


class TestOverlapLowerBound:
    def test_bound_formula(self):
        from repro.core.profiler import overlap_lower_bound

        clock = TimeBreakdown()
        clock.add("gpu", 3.0)
        clock.add("h2d", 2.0)
        clock.add("d2d", 2.0)
        clock.add("cpu", 1.0)
        # max(4, 3) + 1
        assert overlap_lower_bound(clock) == 5.0

    def test_bound_never_exceeds_serial_time(self):
        from repro.core.profiler import overlap_lower_bound

        graph = load_dataset("papers_sim", scale=0.12, seed=2)
        model = build_model(
            "gcn", [graph.feature_dim, 16, graph.num_classes],
            np.random.default_rng(0),
        )
        trainer = HongTuTrainer(
            graph, model, MultiGPUPlatform(A100_SERVER),
            HongTuConfig(num_chunks=4, seed=0),
        )
        result = trainer.train_epoch()
        bound = overlap_lower_bound(result.clock)
        assert bound <= result.epoch_seconds
        assert bound > 0

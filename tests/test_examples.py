"""Smoke tests: every shipped example must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "billion_scale_planning.py",
    "cluster_scaling.py",
    "communication_tuning.py",
    "custom_model.py",
    "paper_walkthrough.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_walkthrough_matches_paper_counts():
    """The Fig. 6 walkthrough must land on the paper's transfer counts."""
    path = os.path.join(EXAMPLES_DIR, "paper_walkthrough.py")
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "exact neighbor data: True" in result.stdout
    # The paper's example reduces 19 vanilla transfers to 8.
    assert "host rows actually moved: 8" in result.stdout

"""Tests for blocks, GNN layers (incl. gradient checks), and models."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError, GraphFormatError
from repro.gnn import (
    Block,
    CommNetLayer,
    GATLayer,
    GCNLayer,
    GGNNLayer,
    GINLayer,
    GraphSAGELayer,
    GNNModel,
    MODEL_REGISTRY,
    build_model,
)
from repro.graph import toy_graph

from tests.conftest import numeric_gradient

ALL_LAYERS = [GCNLayer, GraphSAGELayer, GINLayer, CommNetLayer, GATLayer,
              GGNNLayer]
CACHEABLE_LAYERS = [GCNLayer, GraphSAGELayer, GINLayer, CommNetLayer]


def toy_block():
    return Block.from_graph(toy_graph())


class TestBlock:
    def test_from_graph_dimensions(self):
        block = toy_block()
        assert block.num_src == 8
        assert block.num_dst == 8
        assert block.num_edges == 17

    def test_dst_pos_identity_for_full_graph(self):
        block = toy_block()
        np.testing.assert_array_equal(block.dst_pos, np.arange(8))

    def test_in_degrees(self):
        block = toy_block()
        assert block.in_degrees().sum() == 17

    def test_edge_src_out_of_range(self):
        with pytest.raises(GraphFormatError):
            Block(edge_src=np.array([5]), edge_dst=np.array([0]),
                  num_dst=1, num_src=2, dst_pos=np.array([0]))

    def test_edge_dst_out_of_range(self):
        with pytest.raises(GraphFormatError):
            Block(edge_src=np.array([0]), edge_dst=np.array([3]),
                  num_dst=1, num_src=2, dst_pos=np.array([0]))

    def test_dst_pos_length(self):
        with pytest.raises(GraphFormatError):
            Block(edge_src=np.array([0]), edge_dst=np.array([0]),
                  num_dst=2, num_src=2, dst_pos=np.array([0]))

    def test_edge_weight_parallel(self):
        with pytest.raises(GraphFormatError):
            Block(edge_src=np.array([0]), edge_dst=np.array([0]),
                  num_dst=1, num_src=1, dst_pos=np.array([0]),
                  edge_weight=np.ones(3))


@pytest.mark.parametrize("layer_cls", ALL_LAYERS)
class TestLayerCommon:
    def test_forward_shape(self, layer_cls, rng):
        layer = layer_cls(4, 6, rng)
        block = toy_block()
        out = layer(block, Tensor(rng.standard_normal((8, 4))))
        assert out.shape == (8, 6)

    def test_forward_deterministic(self, layer_cls, rng):
        layer = layer_cls(4, 6, rng)
        block = toy_block()
        x = rng.standard_normal((8, 4))
        a = layer(block, Tensor(x)).data
        b = layer(block, Tensor(x)).data
        np.testing.assert_array_equal(a, b)

    def test_gradcheck_input(self, layer_cls, rng):
        layer = layer_cls(3, 4, rng)
        block = toy_block()
        x = rng.standard_normal((8, 3))
        seed = rng.standard_normal((8, 4))

        x_t = Tensor(x, requires_grad=True)
        layer(block, x_t).backward(seed)

        def scalar():
            return float((layer(block, Tensor(x)).data * seed).sum())

        numeric = numeric_gradient(scalar, x)
        np.testing.assert_allclose(x_t.grad, numeric, atol=1e-5)

    def test_gradcheck_parameters(self, layer_cls, rng):
        layer = layer_cls(3, 4, rng)
        block = toy_block()
        x = rng.standard_normal((8, 3))
        seed = rng.standard_normal((8, 4))
        # Nudge every parameter off zero so no ReLU pre-activation sits
        # exactly at the kink (zero-init biases otherwise make dead rows'
        # pre-activations exactly 0, where numeric/analytic subgradients
        # legitimately differ).
        for _, param in layer.named_parameters():
            param.data = param.data + 0.05 * rng.standard_normal(param.shape)
        layer.zero_grad()
        layer(block, Tensor(x)).backward(seed)

        for name, param in layer.named_parameters():
            def scalar():
                return float((layer(block, Tensor(x)).data * seed).sum())

            numeric = numeric_gradient(scalar, param.data)
            np.testing.assert_allclose(
                param.grad, numeric, atol=1e-5,
                err_msg=f"{layer_cls.__name__}.{name}",
            )

    def test_flops_positive(self, layer_cls, rng):
        layer = layer_cls(8, 8, rng)
        assert layer.aggregate_flops(100, 50, 400) > 0
        assert layer.update_flops(50) > 0
        assert layer.forward_flops(100, 50, 400) == (
            layer.aggregate_flops(100, 50, 400) + layer.update_flops(50)
        )

    def test_workspace_positive(self, layer_cls, rng):
        layer = layer_cls(8, 8, rng)
        assert layer.forward_workspace_scalars(100, 50, 400) > 0

    def test_invalid_dims(self, layer_cls, rng):
        with pytest.raises(ConfigurationError):
            layer_cls(0, 4, rng)


@pytest.mark.parametrize("layer_cls", CACHEABLE_LAYERS)
class TestCacheableAggregates:
    def test_flag(self, layer_cls, rng):
        assert layer_cls(4, 4, rng).cacheable_aggregate

    def test_aggregate_backward_matches_autograd(self, layer_cls, rng):
        """The closed-form adjoint must equal the tape's aggregate grad."""
        layer = layer_cls(4, 4, rng)
        block = toy_block()
        x = rng.standard_normal((8, 4))
        grad_agg = rng.standard_normal((8, 4))

        x_t = Tensor(x, requires_grad=True)
        layer.aggregate(block, x_t).backward(grad_agg)
        closed_form = layer.aggregate_backward(block, grad_agg)
        np.testing.assert_allclose(closed_form, x_t.grad, atol=1e-12)

    def test_aggregate_linear_in_input(self, layer_cls, rng):
        """Cacheable aggregates are linear maps of the input rows."""
        layer = layer_cls(4, 4, rng)
        block = toy_block()
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((8, 4))
        def agg(x):
            return layer.aggregate(block, Tensor(x)).data

        np.testing.assert_allclose(
            agg(a) + agg(b), agg(a + b), atol=1e-10
        )


class TestGAT:
    def test_not_cacheable(self, rng):
        assert not GATLayer(4, 4, rng).cacheable_aggregate

    def test_aggregate_backward_raises(self, rng):
        with pytest.raises(NotImplementedError):
            GATLayer(4, 4, rng).aggregate_backward(toy_block(),
                                                   np.zeros((8, 4)))

    def test_multi_head_shapes(self, rng):
        layer = GATLayer(4, 8, rng, num_heads=2)
        out = layer(toy_block(), Tensor(rng.standard_normal((8, 4))))
        assert out.shape == (8, 8)

    def test_multi_head_gradcheck(self, rng):
        layer = GATLayer(3, 4, rng, num_heads=2)
        block = toy_block()
        x = rng.standard_normal((8, 3))
        seed = rng.standard_normal((8, 4))
        x_t = Tensor(x, requires_grad=True)
        layer(block, x_t).backward(seed)

        def scalar():
            return float((layer(block, Tensor(x)).data * seed).sum())

        numeric = numeric_gradient(scalar, x)
        np.testing.assert_allclose(x_t.grad, numeric, atol=1e-5)

    def test_heads_must_divide(self, rng):
        with pytest.raises(ConfigurationError):
            GATLayer(4, 6, rng, num_heads=4)

    def test_attention_is_convex_combination(self, rng):
        """With identical inputs everywhere, GAT output = W h (softmax
        weights sum to 1)."""
        layer = GATLayer(4, 4, rng, activation=None)
        block = toy_block()
        x = np.tile(rng.standard_normal(4), (8, 1))
        out = layer(block, Tensor(x))
        expected = x @ layer.weight.data
        # Destinations with at least one in-edge equal W h exactly.
        has_edges = block.in_degrees() > 0
        np.testing.assert_allclose(out.data[has_edges],
                                   expected[has_edges], atol=1e-10)

    def test_edge_dominated_workspace(self, rng):
        """GAT workspace must grow with |E| (the paper's Table 1 point)."""
        layer = GATLayer(8, 8, rng)
        sparse = layer.forward_workspace_scalars(100, 100, 200)
        dense = layer.forward_workspace_scalars(100, 100, 20000)
        assert dense > 10 * sparse


class TestModels:
    def test_build_model_dims(self, rng):
        model = build_model("gcn", [16, 8, 4], rng)
        assert model.num_layers == 2
        assert model.dims == [16, 8, 4]

    def test_last_layer_no_activation(self, rng):
        model = build_model("gcn", [16, 8, 4], rng)
        assert model.layers[0].activation == "relu"
        assert model.layers[-1].activation is None

    def test_gat_uses_elu(self, rng):
        model = build_model("gat", [16, 8, 4], rng)
        assert model.layers[0].activation == "elu"

    def test_registry_complete(self):
        assert set(MODEL_REGISTRY) == {"gcn", "gat", "graphsage", "gin",
                                       "commnet", "ggnn"}

    def test_unknown_arch(self, rng):
        with pytest.raises(ConfigurationError):
            build_model("transformer", [4, 2], rng)

    def test_too_few_dims(self, rng):
        with pytest.raises(ConfigurationError):
            build_model("gcn", [4], rng)

    def test_dim_mismatch_detected(self, rng):
        layers = [GCNLayer(4, 8, rng), GCNLayer(16, 2, rng)]
        with pytest.raises(ConfigurationError):
            GNNModel(layers)

    def test_empty_model(self):
        with pytest.raises(ConfigurationError):
            GNNModel([])

    def test_uses_edge_nn(self, rng):
        assert build_model("gat", [4, 4, 2], rng).uses_edge_nn()
        assert not build_model("gcn", [4, 4, 2], rng).uses_edge_nn()

    def test_forward_runs_stack(self, rng):
        model = build_model("graphsage", [4, 8, 3], rng)
        out = model(toy_block(), Tensor(rng.standard_normal((8, 4))))
        assert out.shape == (8, 3)

    def test_forward_flops_sums_layers(self, rng):
        model = build_model("gcn", [4, 8, 3], rng)
        total = model.forward_flops(8, 8, 17)
        assert total == sum(
            layer.forward_flops(8, 8, 17) for layer in model.layers
        )

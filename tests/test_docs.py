"""Tier-1 guard for the documentation: the CI docs job must pass here too.

Runs tools/check_docs.py's checks in-process: every pycon block in the
repo's markdown doctests green, every intra-repo link resolves — and the
checker itself detects planted failures (so a broken checker cannot
silently bless broken docs).
"""

import importlib.util
import os


_TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools",
                      "check_docs.py")
_spec = importlib.util.spec_from_file_location("check_docs", _TOOLS)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_repo_docs_pass():
    """The real repo: all pycon blocks doctest, all links resolve."""
    failures = []
    for path in check_docs.markdown_files():
        failures.extend(check_docs.run_doctests(path))
        failures.extend(check_docs.check_links(path))
    assert not failures, "\n".join(failures)


def test_repo_has_doctested_blocks():
    """The docs job must actually be testing something."""
    total = sum(
        len(check_docs.extract_pycon_blocks(path.read_text()))
        for path in check_docs.markdown_files()
    )
    assert total >= 2  # README + ARCHITECTURE each carry one


def test_checker_catches_failing_doctest(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("```pycon\n>>> 1 + 1\n3\n```\n")
    failures = check_docs.run_doctests(bad)
    assert len(failures) == 1
    assert "failed" in failures[0]


def test_checker_catches_broken_link(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](does/not/exist.md)\n")
    failures = check_docs.check_links(bad)
    assert len(failures) == 1
    assert "does/not/exist.md" in failures[0]


def test_checker_ignores_external_links_and_code_fences(tmp_path):
    ok = tmp_path / "ok.md"
    ok.write_text(
        "[web](https://example.com) [frag](#section)\n"
        "```bash\necho [not](a/link.md)\n```\n"
    )
    assert check_docs.check_links(ok) == []


def test_checker_flags_empty_pycon_block(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("```pycon\n# no examples here\n```\n")
    failures = check_docs.run_doctests(bad)
    assert len(failures) == 1
    assert "no >>> examples" in failures[0]

"""Tests for the multi-node cluster extension.

Covers the collective cost models (ring/tree all-reduce, halo exchange)
including their degenerate cases, the partition→node mapping and halo
analysis, the ClusterPlatform capacity/cost contract, and the trainer-level
scale-out contract: ``nodes=1`` reproduces the single-node epoch seconds to
float precision under both overlap policies, and multi-node pipeline
overlap hides halo traffic under compute.
"""

import numpy as np
import pytest

from repro.autograd import SGD
from repro.comm import ClusterCostModel
from repro.core import HongTuConfig, HongTuTrainer
from repro.errors import ConfigurationError, PartitionError
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import (
    A100_CLUSTER,
    A100_SERVER,
    ClusterPlatform,
    ClusterSpec,
    MultiGPUPlatform,
)
from repro.partition import (
    halo_volumes,
    partition_nodes,
    two_level_partition,
)
from repro.runtime import (
    NET_DEVICE_BASE,
    net_link,
    net_link_nodes,
    net_link_parts,
)


class TestClusterCostModel:
    def make(self, nodes, bandwidth=1e9, latency=1e-6):
        return ClusterCostModel(num_nodes=nodes, bandwidth=bandwidth,
                                latency=latency)

    def test_single_node_collectives_are_free(self):
        """nodes=1: nothing to synchronize, every collective costs 0."""
        model = self.make(1)
        assert model.ring_allreduce_seconds(1 << 30) == 0.0
        assert model.tree_allreduce_seconds(1 << 30) == 0.0
        assert model.allreduce_seconds(1 << 30, "ring") == 0.0
        assert model.allreduce_seconds(1 << 30, "tree") == 0.0

    def test_ring_two_node_degeneracy(self):
        """N=2 ring = one exchange round trip: 2 steps of B/2 each."""
        model = self.make(2, bandwidth=100.0, latency=0.5)
        assert model.ring_allreduce_seconds(200.0) == \
            pytest.approx(2 * (0.5 + 100.0 / 100.0))

    def test_ring_formula(self):
        model = self.make(4, bandwidth=10.0, latency=0.0)
        # 2(N-1) steps of B/N bytes: 6 * (100/4)/10 = 15.
        assert model.ring_allreduce_seconds(100.0) == pytest.approx(15.0)

    def test_tree_formula(self):
        model = self.make(4, bandwidth=10.0, latency=0.0)
        # 2*ceil(log2 4) steps of full B: 4 * 100/10 = 40.
        assert model.tree_allreduce_seconds(100.0) == pytest.approx(40.0)

    def test_tree_beats_ring_on_latency_bound_payloads(self):
        """The crossover the two schedules exist for: with many nodes and
        a tiny payload, the ring's 2(N-1) latencies lose to the tree's
        2 log2 N; with a big payload the ring's B/N steps win."""
        model = self.make(16, bandwidth=1e9, latency=1e-3)
        assert model.tree_allreduce_seconds(8) < \
            model.ring_allreduce_seconds(8)
        assert model.ring_allreduce_seconds(1 << 32) < \
            model.tree_allreduce_seconds(1 << 32)

    def test_zero_byte_ring_costs_only_latency(self):
        model = self.make(4, bandwidth=10.0, latency=0.25)
        assert model.ring_allreduce_seconds(0.0) == pytest.approx(6 * 0.25)

    def test_halo_exchange_message_cost(self):
        model = self.make(2, bandwidth=50.0, latency=0.125)
        assert model.halo_exchange_seconds(100.0) == \
            pytest.approx(0.125 + 2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(0)
        with pytest.raises(ConfigurationError):
            self.make(2, bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            self.make(2, latency=-1.0)
        with pytest.raises(ConfigurationError):
            self.make(2).allreduce_seconds(8, algorithm="carrier_pigeon")

    def test_from_cluster(self):
        model = ClusterCostModel.from_cluster(A100_CLUSTER)
        assert model.num_nodes == A100_CLUSTER.num_nodes
        assert model.bandwidth == A100_CLUSTER.network_bandwidth
        assert model.latency == A100_CLUSTER.network_latency


class TestNetLinks:
    def test_links_disjoint_from_gpu_and_host_ids(self):
        ids = [net_link(s, d, 4) for s in range(4) for d in range(4)]
        assert len(set(ids)) == 16
        assert all(i <= NET_DEVICE_BASE for i in ids)

    def test_roundtrip(self):
        for s in range(3):
            for d in range(3):
                assert net_link_nodes(net_link(s, d, 3), 3) == (s, d)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            net_link(2, 0, 2)
        with pytest.raises(ConfigurationError):
            net_link_nodes(0, 2)
        with pytest.raises(ConfigurationError):
            net_link(0, 1, 2, rail=2, num_rails=2)

    def test_rail_links_disjoint_and_decodable(self):
        ids = [net_link(s, d, 3, rail, 4)
               for s in range(3) for d in range(3) for rail in range(4)]
        assert len(set(ids)) == 36
        for s in range(3):
            for d in range(3):
                for rail in range(4):
                    device = net_link(s, d, 3, rail, 4)
                    assert net_link_parts(device, 3, 4) == (s, d, rail)
                    assert net_link_nodes(device, 3, 4) == (s, d)

    def test_single_rail_encoding_matches_flat(self):
        """num_rails=1 must reproduce the pre-rail link ids bit for bit
        (the flat-default equivalence guarantee)."""
        for s in range(4):
            for d in range(4):
                flat_id = NET_DEVICE_BASE - (s * 4 + d)
                assert net_link(s, d, 4) == flat_id
                assert net_link(s, d, 4, 0, 1) == flat_id


class TestPartitionNodes:
    def test_contiguous_blocks(self):
        np.testing.assert_array_equal(
            partition_nodes(8, 2), [0, 0, 0, 0, 1, 1, 1, 1]
        )
        np.testing.assert_array_equal(partition_nodes(4, 4), [0, 1, 2, 3])

    def test_uneven_split_rejected(self):
        with pytest.raises(PartitionError):
            partition_nodes(6, 4)

    def test_halo_matrix_zero_diagonal_and_single_node(self):
        graph = load_dataset("reddit_sim", scale=0.1, seed=0)
        partition = two_level_partition(graph, 4, 2, seed=0)
        halo = halo_volumes(partition, 2)
        assert halo.shape == (2, 2)
        assert halo[0, 0] == 0 and halo[1, 1] == 0
        # One node: everything is local by construction.
        assert halo_volumes(partition, 1).sum() == 0

    def test_zero_halo_partition(self):
        """Two disconnected rings split at the component boundary: no
        chunk needs a remote node's vertices, so the halo matrix is zero
        (and a cluster run would emit no fetch-phase network tasks)."""
        from repro.graph.graph import Graph

        half = 12
        ring = np.arange(half, dtype=np.int64)
        src = np.concatenate([ring, ring + half])
        dst = np.concatenate([np.roll(ring, 1), np.roll(ring, 1) + half])
        graph = Graph(src, dst, 2 * half, name="two_rings")
        assignment = np.repeat([0, 1, 2, 3], half // 2).astype(np.int64)
        partition = two_level_partition(graph, 4, 2,
                                        assignment=assignment,
                                        gcn_weights=False)
        # Partitions {0,1} cover ring A, {2,3} ring B; with 2 GPUs per
        # node the node boundary coincides with the component boundary.
        halo = halo_volumes(partition, 2)
        assert halo.sum() == 0


@pytest.fixture(scope="module")
def graph():
    return load_dataset("reddit_sim", scale=0.12, seed=3)


def make_trainer(graph, platform, nodes, overlap, comm_mode="hongtu",
                 allreduce="ring"):
    model = build_model("gcn", [graph.feature_dim, 12, graph.num_classes],
                        np.random.default_rng(11))
    return HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=4, comm_mode=comm_mode, overlap=overlap,
                     nodes=nodes, allreduce=allreduce, seed=2),
        optimizer=SGD(model.parameters(), lr=0.02),
    )


class TestClusterPlatform:
    def test_one_node_cluster_matches_single_platform(self):
        single = MultiGPUPlatform(A100_SERVER)
        cluster = ClusterPlatform(A100_CLUSTER.with_num_nodes(1))
        assert cluster.num_gpus == single.num_gpus
        assert cluster.num_nodes == 1
        for nbytes in (1, 1 << 20, 1 << 30):
            assert cluster.h2d_seconds(nbytes) == single.h2d_seconds(nbytes)
            assert cluster.d2d_seconds(nbytes) == single.d2d_seconds(nbytes)

    def test_global_device_ids_and_node_map(self):
        platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(2))
        assert platform.num_gpus == 8
        assert [gpu.device_id for gpu in platform.gpus] == list(range(8))
        assert [platform.node_of(i) for i in range(8)] == \
            [0, 0, 0, 0, 1, 1, 1, 1]
        np.testing.assert_array_equal(
            partition_nodes(8, 2),
            [platform.node_of(i) for i in range(8)],
        )

    def test_net_seconds_prices_latency_plus_bytes(self):
        platform = ClusterPlatform(A100_CLUSTER)
        spec = platform.cluster
        assert platform.net_seconds(0) == spec.network_latency
        assert platform.net_seconds(spec.network_bandwidth) == \
            pytest.approx(spec.network_latency + 1.0)

    def test_single_node_platform_refuses_network(self):
        with pytest.raises(ConfigurationError):
            MultiGPUPlatform(A100_SERVER).net_seconds(1024)

    def test_host_shards_even_split(self):
        platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(2))
        shares = platform.split_host_bytes(101)
        assert [share for _, share in shares] == [51, 50]
        for pool, share in shares:
            pool.alloc("x", share)
        assert platform.host_in_use() == 101

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec("bad", 0, A100_SERVER, 1e9, 0.0)
        with pytest.raises(ValueError):
            ClusterSpec("bad", 2, A100_SERVER, -1.0, 0.0)


class TestClusterTrainer:
    @pytest.mark.parametrize("overlap", ["barrier", "pipeline"])
    def test_nodes1_bit_equal_to_single_node(self, graph, overlap):
        """The acceptance contract: a 1-node cluster reproduces the
        single-node epoch seconds to float precision (both policies)."""
        single = make_trainer(graph, MultiGPUPlatform(A100_SERVER), 1,
                              overlap)
        cluster = make_trainer(
            graph, ClusterPlatform(A100_CLUSTER.with_num_nodes(1)), 1,
            overlap)
        for _ in range(2):
            a = single.train_epoch()
            b = cluster.train_epoch()
            assert a.epoch_seconds == b.epoch_seconds
            assert a.loss == b.loss
            assert a.net_bytes == 0 and b.net_bytes == 0
            assert a.clock.as_dict() == b.clock.as_dict()

    def test_nodes_mismatch_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            make_trainer(graph, MultiGPUPlatform(A100_SERVER), 2, "barrier")
        with pytest.raises(ConfigurationError):
            make_trainer(graph, ClusterPlatform(A100_CLUSTER), 1, "barrier")

    def test_multi_node_emits_network_traffic(self, graph):
        trainer = make_trainer(graph, ClusterPlatform(A100_CLUSTER), 2,
                               "barrier")
        result = trainer.train_epoch()
        result.timeline.validate()
        assert result.net_bytes > 0
        assert result.clock.seconds["net"] > 0
        net_tasks = [task for task in result.timeline.scheduler.tasks
                     if task.channel == "net"]
        assert net_tasks
        # Network tasks occupy link resources, never GPU devices.
        assert all(task.device <= NET_DEVICE_BASE for task in net_tasks)

    def test_multi_node_pipeline_hides_halo_traffic(self, graph):
        """Acceptance: pipeline strictly beats barrier on a multi-node,
        transfer-bound workload by overlapping halo traffic with compute."""
        barrier = make_trainer(graph, ClusterPlatform(A100_CLUSTER), 2,
                               "barrier").train_epoch()
        pipeline = make_trainer(graph, ClusterPlatform(A100_CLUSTER), 2,
                                "pipeline").train_epoch()
        assert pipeline.epoch_seconds < barrier.epoch_seconds
        assert pipeline.net_bytes == barrier.net_bytes

    def test_multi_node_numerics_match_single_node_reference(self, graph):
        """Sharding across nodes must not change what the model computes
        beyond float addition order."""
        single = make_trainer(graph, MultiGPUPlatform(A100_SERVER), 1,
                              "barrier")
        cluster = make_trainer(graph, ClusterPlatform(A100_CLUSTER), 2,
                               "pipeline")
        for _ in range(2):
            a = single.train_epoch()
            b = cluster.train_epoch()
            assert np.isclose(a.loss, b.loss, atol=1e-9)
        state_a = single.model.state_dict()
        state_b = cluster.model.state_dict()
        assert max(np.abs(state_a[k] - state_b[k]).max()
                   for k in state_a) < 1e-8

    @pytest.mark.parametrize("allreduce", ["ring", "tree"])
    def test_allreduce_schedules_run(self, graph, allreduce):
        trainer = make_trainer(graph, ClusterPlatform(A100_CLUSTER), 2,
                               "barrier", allreduce=allreduce)
        result = trainer.train_epoch()
        labels = {task.label for task in result.timeline.scheduler.tasks}
        assert f"all_reduce_{allreduce}" in labels

    def test_single_gpu_per_node_ring_degeneracy(self, graph):
        """N nodes x 1 GPU: no intra-node leg exists; the whole gradient
        synchronization is the inter-node ring, and the epoch still runs
        and validates."""
        platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(2),
                                   gpus_per_node=1)
        trainer = make_trainer(graph, platform, 2, "barrier")
        result = trainer.train_epoch()
        result.timeline.validate()
        labels = [task.label for task in result.timeline.scheduler.tasks]
        assert "all_reduce_ring" in labels
        assert "all_reduce_intra" not in labels
        assert result.net_bytes > 0

    def test_non_dedup_mode_ships_halo_loads_and_flushes(self, graph):
        """Without inter-GPU dedup, staged rows include remotely-owned
        vertices: host loads and gradient flushes must cross the network
        too (halo_load / halo_flush tasks exist)."""
        trainer = make_trainer(graph, ClusterPlatform(A100_CLUSTER), 2,
                               "barrier", comm_mode="baseline")
        result = trainer.train_epoch()
        result.timeline.validate()
        prefixes = {task.label.split("[")[0]
                    for task in result.timeline.scheduler.tasks
                    if task.channel == "net"}
        assert "halo_load" in prefixes
        assert "halo_flush" in prefixes

"""Define a custom GNN layer and train it with HongTu.

Run with:  python examples/custom_model.py

The paper's computation engine lets users plug their own models in (§6).
Here we implement a gated graph layer — h' = sigmoid(gate) * tanh(value)
aggregated over neighbors — by subclassing
:class:`repro.gnn.layers.GNNLayer`. Because its AGGREGATE is a plain
degree-normalized mean (linear, constant coefficients) we can declare it
cacheable and supply the closed-form adjoint, so HongTu's hybrid
intermediate-data policy applies automatically.
"""

import numpy as np

from repro.autograd import Linear, Tensor, ops
from repro.core import HongTuConfig, HongTuTrainer
from repro.gnn import GNNModel
from repro.gnn.layers import GNNLayer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform


class GatedMeanLayer(GNNLayer):
    """h'_v = sigmoid(W_g [h_v ‖ m_v]) * tanh(W_c [h_v ‖ m_v]),
    where m_v is the mean of v's in-neighbors."""

    cacheable_aggregate = True
    update_uses_self = True

    def __init__(self, in_dim, out_dim, rng, dtype=np.float64):
        super().__init__(in_dim, out_dim)
        self.gate = Linear(2 * in_dim, out_dim, rng, dtype=dtype)
        self.value = Linear(2 * in_dim, out_dim, rng, dtype=dtype)

    def aggregate(self, block, h):
        messages = ops.gather_rows(h, block.edge_src)
        total = ops.scatter_add_rows(messages, block.edge_dst, block.num_dst)
        inv_deg = 1.0 / np.maximum(block.in_degrees(), 1)
        return ops.mul(total, Tensor(inv_deg.reshape(-1, 1)))

    def update(self, block, agg, h_dst):
        combined = ops.concat([h_dst, agg], axis=1)
        return ops.mul(ops.sigmoid(self.gate(combined)),
                       ops.tanh(self.value(combined)))

    def aggregate_backward(self, block, grad_agg):
        inv_deg = 1.0 / np.maximum(block.in_degrees(), 1)
        grad_messages = (grad_agg * inv_deg.reshape(-1, 1))[block.edge_dst]
        grad_h = np.zeros((block.num_src, grad_agg.shape[1]),
                          dtype=grad_agg.dtype)
        np.add.at(grad_h, block.edge_src, grad_messages)
        return grad_h

    def aggregate_flops(self, num_src, num_dst, num_edges):
        return 2 * num_edges * self.in_dim + num_dst * self.in_dim

    def update_flops(self, num_dst):
        return 2 * 2 * num_dst * 2 * self.in_dim * self.out_dim


def main() -> None:
    graph = load_dataset("products_sim", scale=0.25, seed=1)
    rng = np.random.default_rng(0)
    model = GNNModel([
        GatedMeanLayer(graph.feature_dim, 48, rng),
        GatedMeanLayer(48, graph.num_classes, rng),
    ], arch="gated-mean")
    print(model)

    trainer = HongTuTrainer(
        graph, model, MultiGPUPlatform(A100_SERVER),
        HongTuConfig(num_chunks=4, seed=0),
    )
    for epoch in range(1, 16):
        result = trainer.train_epoch()
        if epoch % 5 == 0:
            print(f"epoch {epoch:2d}  loss={result.loss:.4f}")
    metrics = trainer.evaluate()
    print(f"val accuracy: {metrics['val_accuracy']:.3f}  "
          f"test accuracy: {metrics['test_accuracy']:.3f}")

    # Sanity: the custom layer trains chunked exactly like monolithic.
    from repro.baselines import FullGraphTrainer
    rng = np.random.default_rng(0)
    reference_model = GNNModel([
        GatedMeanLayer(graph.feature_dim, 48, rng),
        GatedMeanLayer(48, graph.num_classes, rng),
    ], arch="gated-mean")
    reference = FullGraphTrainer(graph, reference_model)
    reference.train_epoch()

    rng = np.random.default_rng(0)
    chunked_model = GNNModel([
        GatedMeanLayer(graph.feature_dim, 48, rng),
        GatedMeanLayer(48, graph.num_classes, rng),
    ], arch="gated-mean")
    chunked = HongTuTrainer(
        graph, chunked_model, MultiGPUPlatform(A100_SERVER),
        HongTuConfig(num_chunks=4, seed=0),
    )
    chunked.train_epoch()
    diff = max(
        np.abs(a - b).max()
        for a, b in zip(reference_model.state_dict().values(),
                        chunked_model.state_dict().values())
    )
    print(f"chunked-vs-monolithic max parameter diff: {diff:.2e}")


if __name__ == "__main__":
    main()

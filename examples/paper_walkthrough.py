"""Walk through the paper's running example (Figures 2, 5, 6) on the toy graph.

Run with:  python examples/paper_walkthrough.py

The paper illustrates its machinery on an 8-vertex graph. This script
reproduces the walk end to end:

* Figure 2/5 — split the toy graph into 4 partitions x 2 chunks and show
  each chunk's destinations and in-neighbors;
* Figure 6(a) — count how often each vertex would cross PCIe if every
  chunk's neighbor set were transferred individually;
* Figure 6(b) — build the deduplicated plan and show the transition sets,
  the inter-GPU fetches, and the intra-GPU reuse that shrink the transfer
  count (19 -> 11 -> 8 in the paper's example);
* finally, execute the plan on real data and verify exactness.
"""

import numpy as np

from repro.comm import DedupCommunicator, build_comm_plan, measure_volumes
from repro.graph import toy_graph
from repro.hardware import A100_SERVER, MultiGPUPlatform, TimeBreakdown
from repro.partition import two_level_partition


def main() -> None:
    graph = toy_graph()
    print(f"toy graph (paper Fig. 2): {graph}")
    for vertex in range(graph.num_vertices):
        neighbors = graph.in_csr.row(vertex).tolist()
        print(f"  {vertex} <- {neighbors}")

    # Figure 2/5: 4 partitions (one per GPU) x 2 chunks. The paper assigns
    # two consecutive vertices per partition; we pass that split explicitly.
    assignment = np.array([0, 0, 1, 1, 2, 2, 3, 3])
    partition = two_level_partition(graph, 4, 2, assignment=assignment)
    print("\n2-level partition (4 GPUs x 2 chunks):")
    for row in partition.chunks:
        for chunk in row:
            print(f"  GPU {chunk.partition_id} batch {chunk.chunk_id}: "
                  f"dst={chunk.dst_global.tolist()} "
                  f"needs={chunk.neighbor_global.tolist()}")

    # Figure 6(a): vanilla transfer counts.
    volumes = measure_volumes(partition)
    print(f"\nvanilla host->GPU vertex transfers (V_ori): {volumes.v_ori}")
    print(f"after inter-GPU dedup      (V+p2p): {volumes.v_p2p}")
    print(f"after intra-GPU reuse       (V+ru): {volumes.v_ru}")
    print(f"host traffic eliminated: {volumes.reduction_fraction:.0%}")

    # Figure 6(b): the concrete plan.
    plan = build_comm_plan(partition)
    print("\ndeduplicated plan:")
    for j in range(plan.num_batches):
        print(f"  batch {j}:")
        for gpu_plan in plan.plans[j]:
            loads = gpu_plan.load_vertices.tolist()
            reused = gpu_plan.transition[gpu_plan.reuse_mask].tolist()
            fetches = {
                segment.source_gpu: len(segment.local_rows)
                for segment in gpu_plan.fetch_segments
                if segment.source_gpu != gpu_plan.gpu
            }
            print(f"    GPU {gpu_plan.gpu}: stages {loads} from host"
                  f"{', reuses ' + str(reused) + ' in place' if reused else ''}"
                  f"{', fetches ' + str(fetches) + ' rows via P2P' if fetches else ''}")

    # Execute the plan on real vertex data and verify exactness.
    platform = MultiGPUPlatform(A100_SERVER)
    comm = DedupCommunicator(plan, platform)
    clock = TimeBreakdown()
    host = np.arange(8, dtype=np.float64).reshape(8, 1) * 10.0
    comm.start_sweep(1)
    exact = True
    for j in range(plan.num_batches):
        outputs = comm.load_batch_forward(j, host, clock)
        for i, out in enumerate(outputs):
            expected = host[plan.plans[j][i].needed]
            exact &= bool(np.array_equal(out, expected))
    comm.end_sweep()
    print(f"\nexecuted plan delivers exact neighbor data: {exact}")
    loaded_rows = comm.bytes_moved["h2d"] // (1 * 4)
    print(f"host rows actually moved: {loaded_rows} (== V+ru = {volumes.v_ru})")


if __name__ == "__main__":
    main()

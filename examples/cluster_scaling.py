"""Walk Table 7's cluster comparison on the simulated event timeline.

Run with:  python examples/cluster_scaling.py

The paper compares one 4-GPU server against a 16-node CPU cluster running
DistGNN (Table 7) and stops there: multi-server HongTu is future work.
This walkthrough runs that comparison — and the scale-out axis beyond it —
on the shared event-timeline runtime:

1. price the inter-node collectives (ring vs tree all-reduce, halo
   exchange) with the ClusterCostModel;
2. inspect the halo a 2-node partition must exchange per layer sweep;
3. run DistGNN on 1 and 16 CPU nodes as a per-layer BSP task DAG;
4. run HongTu on one 4-GPU server and on a 2x4-GPU cluster, barrier vs
   pipeline, and read the network time straight off the timeline.
"""


from repro.baselines import DistGNNSimulator
from repro.bench import (
    bench_model,
    format_bytes,
    format_seconds,
    render_node_utilization,
    render_table,
)
from repro.comm import ClusterCostModel
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import (
    A100_CLUSTER,
    A100_SERVER,
    CPU_NODE,
    ClusterPlatform,
    MultiGPUPlatform,
)
from repro.partition import halo_volumes, two_level_partition


def main() -> None:
    graph = load_dataset("papers_sim", scale=0.25, seed=0)
    print(f"graph: {graph}")

    # --- 1. collective cost models ------------------------------------
    cost = ClusterCostModel.from_cluster(A100_CLUSTER)
    payload = 4 * 1024 * 1024  # a 4 MB gradient payload
    print("\ninter-node collectives on "
          f"{A100_CLUSTER.name} ({format_bytes(payload)} payload):")
    print(f"  ring all-reduce : "
          f"{format_seconds(cost.ring_allreduce_seconds(payload))}")
    print(f"  tree all-reduce : "
          f"{format_seconds(cost.tree_allreduce_seconds(payload))}")
    print(f"  halo message    : "
          f"{format_seconds(cost.halo_exchange_seconds(payload))}")

    # --- 2. halo analysis of a 2-node partition ------------------------
    partition = two_level_partition(graph, 8, 8, seed=0)
    halo = halo_volumes(partition, num_nodes=2)
    print("\nhalo rows per layer sweep (2 nodes x 4 GPUs):")
    for src in range(2):
        for dst in range(2):
            if src != dst:
                print(f"  node{src} -> node{dst}: {halo[src, dst]:,} rows")

    # --- 3. DistGNN on the timeline ------------------------------------
    rows = []
    for nodes in (1, 16):
        model = bench_model("gcn", graph, 2, 128, seed=1)
        simulator = DistGNNSimulator(graph, model,
                                     CPU_NODE.with_num_nodes(nodes))
        result = simulator.train_epoch()
        assert result.epoch_seconds == result.timeline.makespan
        rows.append([
            f"DistGNN {nodes} CPU node(s)",
            format_seconds(result.epoch_seconds),
            format_seconds(result.clock.seconds["net"]),
        ])

    # --- 4. HongTu: one server vs a 2-node cluster ---------------------
    last = None
    for nodes, overlap in ((1, "barrier"), (2, "barrier"), (2, "pipeline")):
        model = bench_model("gcn", graph, 2, 128, seed=1)
        platform = (MultiGPUPlatform(A100_SERVER) if nodes == 1
                    else ClusterPlatform(A100_CLUSTER))
        trainer = HongTuTrainer(
            graph, model, platform,
            HongTuConfig(num_chunks=8, seed=0, overlap=overlap, nodes=nodes),
        )
        result = trainer.train_epoch()
        rows.append([
            f"HongTu {nodes}x4 GPUs, {overlap}",
            format_seconds(result.epoch_seconds),
            format_seconds(result.clock.seconds["net"]),
        ])
        if nodes == 2:
            last = (result, platform)

    print()
    print(render_table(
        ["system", "epoch (timeline makespan)", "net (serialized)"],
        rows,
        title="Table 7 on one runtime: CPU cluster vs GPU server vs "
              "GPU cluster",
    ))

    result, platform = last
    print()
    print(render_node_utilization(
        result.timeline, platform,
        title="HongTu 2x4 pipeline: per-node busy seconds"))
    print(f"\nhalo + all-reduce traffic: {format_bytes(result.net_bytes)}; "
          f"overlap hid "
          f"{format_seconds(result.timeline.overlap_saving())} "
          "of serialized phase time")


if __name__ == "__main__":
    main()

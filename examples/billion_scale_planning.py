"""Plan a billion-scale training run before buying any hardware.

Run with:  python examples/billion_scale_planning.py

This is the workload the paper's introduction motivates: you want to train
a 3-layer GCN (and a GAT) on ogbn-paper / friendster-class graphs, and need
to know (a) why the in-GPU-memory systems cannot do it, (b) what HongTu's
per-chunk footprint looks like, and (c) how chunk count trades memory for
communication — all from the analytic models, at the *paper's true scales*.
"""

from repro.core import estimate_training_memory
from repro.graph import PAPER_PROFILES
from repro.hardware import GB
from repro.partition import vertex_data_per_subgraph
from repro.bench import render_table


def working_set_report() -> None:
    print("=== Full-graph training working sets (paper scale) ===")
    rows = []
    for name, dims, arch in [
        ("it-2004", [256, 128, 128, 64], "gcn"),
        ("ogbn-paper", [200, 128, 128, 172], "gcn"),
        ("friendster", [256, 128, 128, 64], "gcn"),
        ("friendster", [256, 128, 128, 64], "gat"),
    ]:
        profile = PAPER_PROFILES[name]
        estimate = estimate_training_memory(
            profile.num_vertices, profile.num_edges, dims, arch=arch
        )
        gb = estimate.as_gb()
        a100s_needed = -(-estimate.total_bytes // (80 * GB))  # ceil
        rows.append([
            name, arch,
            f"{gb['topology_gb']:.0f}", f"{gb['vertex_data_gb']:.0f}",
            f"{gb['intermediate_gb']:.0f}", f"{gb['total_gb']:.0f}",
            a100s_needed,
        ])
    print(render_table(
        ["Graph", "Model", "Topo GB", "Vtx GB", "Intr GB", "Total GB",
         "A100-80GB needed"],
        rows,
    ))


def chunking_report() -> None:
    print("\n=== HongTu per-subgraph vertex data vs chunk count "
          "(ogbn-paper, 4 GPUs) ===")
    profile = PAPER_PROFILES["ogbn-paper"]
    rows = []
    for chunks_per_gpu in [8, 16, 32, 64, 128]:
        subgraphs = 4 * chunks_per_gpu
        alpha = profile.replication_factors.get(subgraphs)
        if alpha is None:
            continue
        volume = vertex_data_per_subgraph(
            profile.num_vertices, alpha, subgraphs, feature_dim=128
        )
        rows.append([
            chunks_per_gpu, subgraphs, f"{alpha:.2f}",
            f"{volume / GB:.2f} GB",
        ])
    print(render_table(
        ["Chunks/GPU", "Total subgraphs", "alpha (Table 3)",
         "Vtx data per subgraph"],
        rows,
    ))
    print("\nReading: with 32 chunks per GPU (128 subgraphs), each subgraph"
          "\nneeds only a few GB of vertex data — that is what lets 4 GPUs"
          "\ntrain a graph whose full working set is ~1 TB (Table 1).")


if __name__ == "__main__":
    working_set_report()
    chunking_report()

"""Quickstart: train a 2-layer GCN with HongTu on a simulated 4-GPU server.

Run with:  python examples/quickstart.py

Demonstrates the one-call helper plus the explicit API underneath it:
load a dataset, build a model, pick a platform, configure the framework,
train, and inspect simulated cost and memory.
"""

import numpy as np

from repro import (
    A100_SERVER,
    HongTuConfig,
    HongTuTrainer,
    MultiGPUPlatform,
    build_model,
    load_dataset,
)
from repro.bench import format_bytes, format_seconds


def main() -> None:
    # 1. Dataset: a stand-in for reddit (dense, community-structured).
    graph = load_dataset("reddit_sim", scale=0.25, seed=7)
    print(f"dataset: {graph}  features={graph.feature_dim} "
          f"classes={graph.num_classes}")

    # 2. Model: F -> 64 -> C graph convolutional network.
    model = build_model(
        "gcn", [graph.feature_dim, 64, graph.num_classes],
        np.random.default_rng(0),
    )

    # 3. Platform: the paper's 4xA100 + NVLink server, simulated.
    platform = MultiGPUPlatform(A100_SERVER)

    # 4. Framework configuration: 4 chunks per GPU, full deduplicated
    #    communication, hybrid intermediate-data management.
    config = HongTuConfig(num_chunks=4, comm_mode="hongtu",
                          intermediate_policy="hybrid", seed=0)

    trainer = HongTuTrainer(graph, model, platform, config)

    # 5. Train 20 full-graph epochs.
    for epoch in range(1, 21):
        result = trainer.train_epoch()
        if epoch % 5 == 0:
            print(f"epoch {epoch:3d}  loss={result.loss:.4f}  "
                  f"simulated epoch time={format_seconds(result.epoch_seconds)}  "
                  f"peak GPU mem={format_bytes(result.peak_gpu_bytes)}")

    # 6. Evaluate.
    metrics = trainer.evaluate()
    print(f"val accuracy:  {metrics['val_accuracy']:.3f}")
    print(f"test accuracy: {metrics['test_accuracy']:.3f}")

    # 7. Where did the time go? (the Fig. 9 breakdown for this workload)
    result = trainer.train_epoch()
    for category, seconds in result.clock.as_dict().items():
        share = seconds / result.epoch_seconds if result.epoch_seconds else 0
        print(f"  {category:4s}: {format_seconds(seconds)}  ({share:.0%})")


if __name__ == "__main__":
    main()

"""Tune the deduplicated communication framework for a workload.

Run with:  python examples/communication_tuning.py

Walks through the paper's §5 pipeline on a social-network stand-in:

1. measure the duplication volumes (V_ori / V+p2p / V+ru) of a 2-level
   partition;
2. price them with the Eq. 4 cost model on two interconnects (NVLink vs
   PCIe-only);
3. run Algorithm 4 reorganization under cost-model guidance;
4. train one epoch per communication mode and compare measured traffic.
"""


from repro.bench import bench_model, format_bytes, format_seconds, render_table
from repro.comm import (
    CommCostModel,
    measure_volumes,
    reorganize_partition,
)
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import (
    A100_SERVER,
    PCIE_ONLY_SERVER,
    MultiGPUPlatform,
)
from repro.partition import two_level_partition


def main() -> None:
    graph = load_dataset("friendster_sim", scale=0.4, seed=0)
    print(f"graph: {graph}")

    # --- 1. duplication analysis -------------------------------------
    partition = two_level_partition(graph, 4, 12, seed=0)
    volumes = measure_volumes(partition)
    normalized = volumes.normalized()
    print("\nduplication volumes (vertex rows / |V|):")
    print(f"  vanilla (V_ori)          : {normalized['v_ori']:.2f}")
    print(f"  -> inter-GPU dedup saves : {normalized['inter_gpu_dedup']:.2f}")
    print(f"  -> intra-GPU reuse saves : {normalized['intra_gpu_dedup']:.2f}")
    print(f"  host traffic kept (V+ru) : {normalized['v_ru']:.2f}")
    print(f"  reduction                : {volumes.reduction_fraction:.0%}")

    # --- 2. price it on two interconnects ------------------------------
    row_bytes = 128 * 4
    for spec in (A100_SERVER, PCIE_ONLY_SERVER):
        platform = MultiGPUPlatform(spec, numa_aware=True)
        model = CommCostModel.from_platform(platform)
        dedup = model.cost_seconds(volumes, row_bytes)
        vanilla = model.vanilla_cost_seconds(volumes, row_bytes)
        print(f"\n{spec.name}: Eq.4 cost {format_seconds(dedup)} vs vanilla "
              f"{format_seconds(vanilla)}  ({vanilla / dedup:.2f}x)")

    # --- 3. cost-guided reorganization ---------------------------------
    cost_model = CommCostModel.from_platform(MultiGPUPlatform(A100_SERVER))
    outcome = reorganize_partition(partition, cost_model=cost_model,
                                   row_bytes=row_bytes)
    print(f"\nAlgorithm 4: cost {format_seconds(outcome.cost_before)} -> "
          f"{format_seconds(outcome.cost_after)} "
          f"(kept original: {outcome.kept_original}, "
          f"preprocessing {outcome.preprocessing_seconds * 1e3:.1f} ms wall)")

    # --- 4. train one epoch per communication mode ----------------------
    rows = []
    for mode in ["baseline", "p2p", "ru", "hongtu"]:
        model = bench_model("gcn", graph, 2, 128, seed=1)
        trainer = HongTuTrainer(
            graph, model, MultiGPUPlatform(A100_SERVER),
            HongTuConfig(num_chunks=12, comm_mode=mode, seed=0),
        )
        result = trainer.train_epoch()
        rows.append([
            mode,
            format_seconds(result.epoch_seconds),
            format_bytes(result.h2d_bytes),
            format_bytes(result.d2h_bytes),
            format_bytes(result.d2d_bytes),
        ])
    print()
    print(render_table(
        ["comm mode", "epoch time", "host->GPU bytes", "GPU->host bytes",
         "GPU<->GPU bytes"],
        rows,
        title="one GCN epoch per communication mode",
    ))


if __name__ == "__main__":
    main()

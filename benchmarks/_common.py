"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper: it
runs the workload on the simulated platform, renders the same rows/series
the paper reports, prints them, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os

__all__ = ["emit", "RESULTS_DIR", "BENCH_SCALE"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: dataset scale used by all benchmarks (tests use smaller scales)
BENCH_SCALE = 0.35


def emit(name: str, text: str) -> None:
    """Print a rendered table and archive it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")

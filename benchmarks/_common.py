"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper: it
runs the workload on the simulated platform, renders the same rows/series
the paper reports, prints them, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.

:func:`emit_json` additionally archives machine-readable *simulated*
metrics (makespans, halo rows — deterministic pure-float results, not
wall-clock timings) as ``results/<name>.json``; the CI bench-regression
job compares these against the committed ``results/baseline.json`` with
``tools/check_bench_regression.py`` and fails on a >15% regression.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["emit", "emit_json", "timed_call", "fleet_scenario",
           "RESULTS_DIR", "BENCH_SCALE"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: dataset scale used by all benchmarks (tests use smaller scales)
BENCH_SCALE = 0.35


def emit(name: str, text: str) -> None:
    """Print a rendered table and archive it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")


def timed_call(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` and return ``(result, wall_seconds)``.

    The wall clock feeds the ``sim_wall_seconds`` metric each smoke
    archives next to its simulated metrics — how long the simulator
    itself took, gated with the looser ``--wall-tolerance`` headroom.
    """
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def fleet_scenario(**overrides):
    """A bench fleet described through the CLI's exact code path.

    Returns a :class:`repro.scenario.ClusterArgs`; benches call
    ``.build_platform()`` / ``.build_config(...)`` on it so a fleet
    assembled here and one parsed from ``repro train --nodes ...`` can
    never drift apart. Keyword overrides are the shared CLI vocabulary
    (``nodes``, ``gpus``, ``fault=[...]``, ...).
    """
    from repro.scenario import ClusterArgs

    return ClusterArgs(**overrides)


def emit_json(name: str, metrics: dict, step: str = None,
              config=None) -> None:
    """Archive simulated metrics as results/<name>.json for CI.

    ``metrics`` maps metric name → number. Metrics are *simulated*
    (deterministic across machines) and lower-is-better — the contract
    ``tools/check_bench_regression.py`` enforces against
    ``results/baseline.json``. The one exception is metrics ending in
    ``wall_seconds`` (simulator wall clock), which the checker gates
    with the separate, looser ``--wall-tolerance``.

    ``step`` names the CI job step that produced the result; the
    regression checker echoes it next to any failing metric so the
    offending step is identifiable straight from the gate's output.

    ``config`` records provenance: the producing
    :class:`~repro.core.HongTuConfig` (or any object with ``to_dict``,
    or a plain dict) is archived under ``"config"`` so a regressed
    number can be re-run from the artifact alone via
    ``HongTuConfig.from_dict``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    payload = {"bench": name,
               "metrics": {key: float(value)
                           for key, value in metrics.items()}}
    if step is not None:
        payload["step"] = step
    if config is not None:
        payload["config"] = (config.to_dict()
                             if hasattr(config, "to_dict") else dict(config))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Benchmark-suite collection hygiene.

The pytest config collects ``bench_*`` callables so the benchmark files'
entry points are discovered — but the workload helpers ``bench_model`` /
``bench_graph`` imported from :mod:`repro.bench.workloads` match the same
pattern. Filter out anything not actually defined in a benchmark module.
"""


def pytest_collection_modifyitems(items):
    items[:] = [
        item for item in items
        if getattr(item.function, "__module__", "").startswith("benchmarks")
        or getattr(item.function, "__module__", "") == item.module.__name__
    ]

"""Topology sweep — flat vs spine vs rail cluster fabrics (beyond the paper).

The paper's testbed is a single server; the cluster extension models the
network explicitly, and this benchmark quantifies what the wiring costs:
the same halo-heavy GCN epoch runs on 2 and 4 nodes under the ideal
non-blocking ``flat`` switch, an oversubscribed ``spine`` core, and a
``rail``-optimized fabric, under both overlap policies' makespans.

Expected shape: ``flat`` lower-bounds every fabric; ``spine`` at
oversubscription 1 reproduces it exactly (float-identical) while
oversubscription > 1 is strictly slower (the acceptance contract of the
topology model); ``rail`` sits near flat when per-GPU halo traffic is
balanced. A second table demonstrates the net-aware Algorithm 4 objective:
on a self-staging communication mode the net-aware reorganization ships
measurably fewer cross-node halo bytes through the executor than the
paper's net-blind greedy.

The ``smoke`` variants run a tiny graph so CI can exercise all three
topologies in seconds.
"""

import numpy as np

from repro.autograd import SGD
from repro.bench import render_table
from repro.comm import (
    ClusterCostModel,
    CommCostModel,
    DedupCommunicator,
    build_comm_plan,
    reorganize_partition,
)
from repro.core import HongTuConfig, HongTuTrainer
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import (
    A100_CLUSTER,
    A100_SERVER,
    ClusterPlatform,
    MultiGPUPlatform,
    NetworkTopology,
    TimeBreakdown,
)
from repro.partition import two_level_partition

from benchmarks._common import BENCH_SCALE, emit, emit_json, timed_call

DATASET = "reddit_sim"
NODE_COUNTS = [2, 4]
HIDDEN = 64
NUM_CHUNKS = 4
OVERSUBSCRIPTION = 4.0

TOPOLOGIES = [
    ("flat", NetworkTopology("flat")),
    ("spine 1x", NetworkTopology("spine", oversubscription=1.0)),
    (f"spine {OVERSUBSCRIPTION:.0f}x",
     NetworkTopology("spine", oversubscription=OVERSUBSCRIPTION)),
    ("rail", NetworkTopology("rail")),
]


def run_sweep(scale=BENCH_SCALE, node_counts=NODE_COUNTS):
    graph = load_dataset(DATASET, scale=scale, seed=1)
    results = {}
    for nodes in node_counts:
        for name, topology in TOPOLOGIES:
            for overlap in ("barrier", "pipeline"):
                cluster = A100_CLUSTER.with_num_nodes(nodes) \
                    .with_topology(topology)
                platform = ClusterPlatform(cluster)
                model = build_model(
                    "gcn", [graph.feature_dim, HIDDEN, graph.num_classes],
                    np.random.default_rng(7))
                trainer = HongTuTrainer(
                    graph, model, platform,
                    HongTuConfig(num_chunks=NUM_CHUNKS, overlap=overlap,
                                 nodes=nodes, topology=topology.kind,
                                 oversubscription=topology.oversubscription,
                                 seed=0),
                    optimizer=SGD(model.parameters(), lr=0.02),
                )
                result = trainer.train_epoch()
                result.timeline.validate()
                results[(nodes, name, overlap)] = result.epoch_seconds
    return results


def build_sweep_table(results, node_counts=NODE_COUNTS):
    rows = []
    for nodes in node_counts:
        for name, _topology in TOPOLOGIES:
            barrier = results[(nodes, name, "barrier")]
            pipeline = results[(nodes, name, "pipeline")]
            flat = results[(nodes, "flat", "pipeline")]
            rows.append([
                f"{nodes}x4 GPUs", name, f"{barrier:.6f}",
                f"{pipeline:.6f}", f"{pipeline / flat:.2f}x",
            ])
    return render_table(
        ["Cluster", "topology", "barrier s", "pipeline s", "vs flat"],
        rows,
        title=f"Topology sweep ({DATASET}, GCN): epoch seconds per fabric",
    )


def check_sweep(results, node_counts=NODE_COUNTS):
    over = f"spine {OVERSUBSCRIPTION:.0f}x"
    for nodes in node_counts:
        for overlap in ("barrier", "pipeline"):
            flat = results[(nodes, "flat", overlap)]
            # A non-blocking spine is the flat network, bit for bit.
            assert results[(nodes, "spine 1x", overlap)] == flat
            # An oversubscribed core is strictly slower on halo traffic.
            assert results[(nodes, over, overlap)] > flat


def bench_topology_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("topology_sweep", build_sweep_table(results))
    check_sweep(results)


# ----------------------------------------------------------------------
# net-aware reorganization: measured halo bytes, blind vs aware
# ----------------------------------------------------------------------
def measure_halo_bytes(partition, platform, dim=HIDDEN):
    """Executor-measured cross-node bytes of one forward+backward sweep
    under self-staging (the Baseline/+RU ladder rung, where staging
    reuse controls the network)."""
    plan = build_comm_plan(partition, dedup_inter=False, dedup_intra=True)
    comm = DedupCommunicator(plan, platform, 4)
    host = np.zeros((partition.graph.num_vertices, dim))
    grads = np.zeros_like(host)
    clock = TimeBreakdown()
    comm.start_sweep(dim)
    for j in range(plan.num_batches):
        outputs = comm.load_batch_forward(j, host, clock)
        comm.accumulate_batch_backward(
            j, [out.copy() for out in outputs], grads, clock)
    comm.end_sweep()
    return comm.bytes_moved["net"]


def run_reorg(scale=BENCH_SCALE, nodes=2):
    graph = load_dataset(DATASET, scale=scale, seed=3)
    partition = two_level_partition(graph, 4 * nodes, NUM_CHUNKS, seed=0)
    platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(nodes))
    cost_model = CommCostModel.from_platform(MultiGPUPlatform(A100_SERVER))
    cluster_model = ClusterCostModel.from_cluster(platform.cluster)
    row_bytes = HIDDEN * 4
    blind = reorganize_partition(partition, cost_model, row_bytes)
    aware = reorganize_partition(partition, cost_model, row_bytes,
                                 cluster_model=cluster_model,
                                 num_nodes=nodes)
    return {
        "original": measure_halo_bytes(partition, platform),
        "net-blind greedy": measure_halo_bytes(blind.partition, platform),
        "net-aware greedy": measure_halo_bytes(aware.partition, platform),
        "predicted rows saved": aware.predicted_net_rows_saved,
    }


def build_reorg_table(measured):
    baseline = measured["net-blind greedy"]
    rows = [
        [name, f"{nbytes:,}",
         f"{(baseline - nbytes) / baseline:+.1%}" if baseline else "-"]
        for name, nbytes in measured.items()
        if name != "predicted rows saved"
    ]
    return render_table(
        ["layout", "measured cross-node halo bytes", "vs net-blind"],
        rows,
        title=f"Net-aware Algorithm 4 ({DATASET}, 2 nodes, self-staging "
              f"sweep; predicted rows saved: "
              f"{measured['predicted rows saved']})",
    )


def bench_topology_reorg_net(benchmark):
    measured = benchmark.pedantic(run_reorg, rounds=1, iterations=1)
    emit("topology_reorg_net", build_reorg_table(measured))
    # Acceptance: the net-aware objective ships strictly fewer bytes than
    # the net-blind heuristic, and never more than the original layout.
    assert measured["net-aware greedy"] < measured["net-blind greedy"]
    assert measured["net-aware greedy"] <= measured["original"]


# ----------------------------------------------------------------------
# CI smoke: tiny graph, 2 nodes, all three topologies
# ----------------------------------------------------------------------
def bench_topology_smoke(benchmark):
    results, wall = timed_call(
        benchmark.pedantic, run_sweep,
        kwargs={"scale": 0.08, "node_counts": [2]},
        rounds=1, iterations=1)
    emit("topology_smoke", build_sweep_table(results, node_counts=[2]))
    metrics = {
        f"{name.replace(' ', '_')}_{overlap}_seconds": seconds
        for (nodes, name, overlap), seconds in results.items()
        if nodes == 2
    }
    metrics["sim_wall_seconds"] = wall
    emit_json("topology_smoke", metrics,
              step="Benchmark smoke (topology sweep + placement search + joint)")
    check_sweep(results, node_counts=[2])

"""Fault-injected fleet: online elastic re-balance vs riding it out.

The fault subsystem perturbs per-device rates over simulated time
(:mod:`repro.faults`) and the trainer reacts at epoch boundaries: a
straggling node shows up as an epoch makespan past the
``rebalance_trigger`` threshold, the placement search re-runs against
the degraded capability/bandwidth vectors, and the moved partitions'
state is migrated on the timeline. This benchmark measures the piece
that justifies the machinery, twice:

* **straggler** — one node of a 3-node fleet loses 80% of its compute
  and 90% of its NIC mid-run. Elastic re-balancing must make the
  steady-state (post-migration) epoch strictly faster than the static
  placement riding out the same fault, *and* leave the numerics
  untouched (the loss stream is placement-invariant).
* **death** — one node dies mid-run. Training must complete with every
  partition re-admitted onto the survivors and the dead node serving
  nothing.

``bench_faulty_fleet_smoke`` asserts both and archives the makespans
plus the migration volume into the bench-regression harness, with the
producing config recorded for provenance.

``python benchmarks/bench_faulty_fleet.py`` prints the comparison table
at full bench scale.

Both fleets are described through :func:`benchmarks._common.fleet_scenario`
— the same :class:`~repro.scenario.ClusterArgs` path the CLI parses
``--fault`` specs into, so the bench exercises the shared scenario API
end to end.
"""

import argparse
import math

from repro.bench import format_bytes, format_seconds, render_table
from repro.core import HongTuTrainer
from repro.graph import load_dataset

from benchmarks._common import emit, emit_json, fleet_scenario, timed_call

DATASET = "products_sim"
#: full-scale run; the elastic win is not monotone in scale (the NIC
#: penalty folded into the integer placement objective rounds), 0.25 is
#: a scale where the re-balance visibly pays off
SCALE = 0.25
#: smoke scale — small enough for CI, large enough that the straggled
#: fleet's placement search has real skew to exploit
SMOKE_SCALE = 0.08
NODES = 3
GPUS_PER_NODE = 2
HIDDEN = 8
EPOCHS = 9
#: the straggler loses 80% compute / 90% NIC; a fleet that cannot route
#: around that pays for it every epoch
COMPUTE_FACTOR = 0.2
NIC_FACTOR = 0.1
DEAD_NODE = 1
SEED = 0

STEP = "Benchmark smoke (fault-injected fleet, elastic re-balance)"


def _scenario(fault=None, no_elastic=False):
    return fleet_scenario(
        nodes=NODES, gpus=GPUS_PER_NODE, hidden_dim=HIDDEN,
        placement="search", max_imbalance=2, seed=SEED,
        fault=fault, no_elastic=no_elastic,
    )


def _trainer(scenario, scale):
    graph = load_dataset(DATASET, scale=scale, seed=SEED + 42)
    config = scenario.build_config(overlap="pipeline")
    return HongTuTrainer(graph, scenario.build_model(graph),
                         scenario.build_platform(), config), config


def _probe_epoch_seconds(scale):
    """Faultless epoch makespan — the unit fault times are phrased in.

    Fault schedules are anchored in simulated fleet-seconds; phrasing
    start/death times as multiples of the faultless epoch makespan keeps
    the bench scale-independent (epoch 1-2 calibrate the detector's
    baseline, the fault lands around epoch 3).
    """
    trainer, _ = _trainer(_scenario(), scale)
    return trainer.train_epoch().epoch_seconds


def run_faulty_fleet(scale=SCALE):
    """Straggler (elastic vs static) + death (elastic) runs.

    All runs share the dataset, model weights and fault timing; the
    straggler pair differs only in ``no_elastic``.
    """
    epoch0 = _probe_epoch_seconds(scale)
    straggler = (f"straggler:node={NODES - 1},start={2.5 * epoch0}"
                 f",compute={COMPUTE_FACTOR},nic={NIC_FACTOR}")
    death = f"death:node={DEAD_NODE},at={2.5 * epoch0}"

    runs = {}
    for label, fault, static in (("elastic", straggler, False),
                                 ("static", straggler, True),
                                 ("death", death, False)):
        trainer, config = _trainer(
            _scenario(fault=[fault], no_elastic=static), scale)
        epochs = [trainer.train_epoch() for _ in range(EPOCHS)]
        runs[label] = (trainer, epochs, config)
    return runs


# ----------------------------------------------------------------------
# CI smoke: elastic strictly beats static; deaths fully re-admit
# ----------------------------------------------------------------------
def check_fleet(runs):
    elastic, elastic_epochs, _ = runs["elastic"]
    static, static_epochs, _ = runs["static"]
    dead, dead_epochs, _ = runs["death"]

    # The straggler fired and the elastic trainer re-balanced around it;
    # its steady-state epoch strictly beats riding out the fault.
    assert elastic.rebalances, "elastic trainer never re-balanced"
    assert elastic.rebalances[0].trigger == "makespan"
    assert not static.rebalances
    assert (elastic_epochs[-1].epoch_seconds
            < static_epochs[-1].epoch_seconds)
    # Placement never touches numerics: identical loss streams.
    assert ([epoch.loss for epoch in elastic_epochs]
            == [epoch.loss for epoch in static_epochs])

    # The death re-balanced unconditionally and evacuated everything:
    # every partition lives on a survivor and training completed.
    assert dead.platform.dead_nodes == frozenset({DEAD_NODE})
    assert [event.trigger for event in dead.rebalances] == ["death"]
    assert DEAD_NODE not in set(dead.placement.tolist())
    assert len(dead.placement) == NODES * GPUS_PER_NODE
    assert all(math.isfinite(epoch.loss) for epoch in dead_epochs)
    for epochs in (elastic_epochs, static_epochs, dead_epochs):
        epochs[-1].timeline.validate()


def bench_faulty_fleet_smoke(benchmark):
    runs, wall = timed_call(
        benchmark.pedantic, run_faulty_fleet,
        kwargs={"scale": SMOKE_SCALE}, rounds=1, iterations=1)
    emit("faulty_fleet_smoke", build_table(
        runs,
        title=f"Fault-injected fleet smoke ({DATASET}, {NODES} nodes x "
              f"{GPUS_PER_NODE} GPUs)",
    ))
    emit_json("faulty_fleet_smoke", {
        "elastic_steady_seconds": runs["elastic"][1][-1].epoch_seconds,
        "static_steady_seconds": runs["static"][1][-1].epoch_seconds,
        "death_recovery_seconds": runs["death"][1][-1].epoch_seconds,
        "migration_bytes": sum(event.migration_bytes
                               for event in runs["elastic"][0].rebalances),
        "sim_wall_seconds": wall,
    }, step=STEP, config=runs["elastic"][2])
    check_fleet(runs)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_table(runs, title):
    rows = []
    for label in ("elastic", "static", "death"):
        trainer, epochs, _ = runs[label]
        moved = sum(len(event.moved_partitions)
                    for event in trainer.rebalances)
        migrated = sum(event.migration_bytes
                       for event in trainer.rebalances)
        rows.append([
            label,
            str(trainer.placement.tolist()),
            f"{len(trainer.rebalances)} ({moved} partition(s), "
            f"{format_bytes(migrated)})" if trainer.rebalances else "-",
            format_seconds(epochs[-1].epoch_seconds),
        ])
    return render_table(
        ["run", "final placement", "re-balances", "steady-state epoch"],
        rows, title=title,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Elastic re-balance vs static placement on a "
                    "fault-injected fleet")
    parser.add_argument("--scale", type=float, default=SCALE)
    args = parser.parse_args(argv)
    runs = run_faulty_fleet(scale=args.scale)
    emit("faulty_fleet", build_table(
        runs,
        title=f"Fault-injected fleet ({DATASET} @ {args.scale}, "
              f"{NODES} nodes x {GPUS_PER_NODE} GPUs)",
    ))
    elastic = runs["elastic"][1][-1].epoch_seconds
    static = runs["static"][1][-1].epoch_seconds
    print(f"elastic steady-state epoch is {static / elastic:.3f}x "
          f"better than riding out the straggler")
    check_fleet(runs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Serving throughput vs latency under Poisson and bursty traffic.

The serving subsystem (``repro.serving``) turns the epoch simulator into
a request-driven one; this benchmark sweeps offered load over the two
arrival shapes at *equal* expected requests/second and reports the
latency percentiles next to the achieved throughput — the classic
serving trade-off curve. The headline property (asserted by the smoke,
gated in CI): bursty traffic's p99 latency strictly dominates Poisson's
at the same offered load, because burst epochs pile requests onto the
same accelerator queues while the memoryless process spreads them out.

``bench_serving_smoke`` serves one Poisson and one bursty horizon on a
2-node cluster (so halo fetches are exercised), asserts the p99
separation and timeline validity, and archives the simulated p50/p99
(15% gate) plus ``sim_wall_seconds`` (the looser ``--wall-tolerance``
gate) into the bench-regression harness.

``python benchmarks/bench_serving.py`` sweeps rates × arrival kinds and
prints the throughput-vs-latency table.
"""

import argparse

import numpy as np

from repro.bench import format_seconds, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import A100_CLUSTER, A100_SERVER, ClusterPlatform
from repro.serving import ServingEngine, build_arrivals, build_policy

from benchmarks._common import BENCH_SCALE, emit, emit_json, timed_call

DATASET = "reddit_sim"
HIDDEN = 32
NUM_CHUNKS = 2
NODES = 2
GPUS_PER_NODE = 2
DURATION = 0.5
SEED = 7


def build_serving_trainer(scale=BENCH_SCALE):
    """A 2-node cluster trainer: serving halo fetches cross the network."""
    graph = load_dataset(DATASET, scale=scale, seed=2)
    cluster = A100_CLUSTER.with_num_nodes(NODES).with_node(
        A100_SERVER.with_num_gpus(GPUS_PER_NODE))
    platform = ClusterPlatform(cluster)
    model = build_model(
        "gcn", [graph.feature_dim, HIDDEN, graph.num_classes],
        np.random.default_rng(7))
    return HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=NUM_CHUNKS, overlap="pipeline",
                     nodes=NODES, seed=0),
    )


def run_serving(trainer, kind, rate, policy_name="immediate",
                duration=DURATION, seed=SEED):
    """One serving horizon on a fresh engine (cold cache each run)."""
    engine = ServingEngine(trainer)
    arrivals = build_arrivals(kind, rate, duration, seed=seed)
    policy = build_policy(policy_name)
    return engine.serve(arrivals, policy)


def build_table(results, title):
    rows = [
        [result.arrival_kind, f"{result.num_requests}",
         f"{result.throughput:,.0f}",
         format_seconds(result.p50), format_seconds(result.p95),
         format_seconds(result.p99),
         f"{result.cache_hit_rate:.0%}"]
        for result in results
    ]
    return render_table(
        ["arrival", "requests", "req/s", "p50", "p95", "p99",
         "cache hits"],
        rows, title=title,
    )


# ----------------------------------------------------------------------
# CI smoke: bursty p99 strictly dominates Poisson p99 at equal load
# ----------------------------------------------------------------------
def run_smoke(rate=400.0):
    trainer = build_serving_trainer(scale=0.3)
    poisson = run_serving(trainer, "poisson", rate)
    bursty = run_serving(trainer, "bursty", rate)
    return poisson, bursty


def check_smoke(poisson, bursty):
    # Equal offered load, different clustering: the burst queues must
    # inflate the tail strictly (the serving subsystem's acceptance
    # property), and both timelines must be consistent DAGs.
    assert poisson.num_requests > 0 and bursty.num_requests > 0
    assert bursty.p99 > poisson.p99
    assert poisson.net_bytes > 0  # halo fetches crossed the network
    poisson.timeline.validate()
    bursty.timeline.validate()


def bench_serving_smoke(benchmark):
    (poisson, bursty), wall = timed_call(
        lambda: benchmark.pedantic(run_smoke, rounds=1, iterations=1))
    emit("serving_smoke", build_table(
        [poisson, bursty],
        title=f"Serving smoke ({DATASET}, {NODES}x{GPUS_PER_NODE} GPUs, "
              "immediate policy, equal offered load)",
    ))
    emit_json("serving_smoke", {
        "poisson_p50_seconds": poisson.p50,
        "poisson_p99_seconds": poisson.p99,
        "bursty_p99_seconds": bursty.p99,
        "sim_wall_seconds": wall,
    }, step="Benchmark smoke (serving, bursty vs Poisson tail latency)")
    check_smoke(poisson, bursty)


# ----------------------------------------------------------------------
# CLI: throughput-vs-latency sweep
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Serving throughput vs latency sweep")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[200.0, 1000.0, 5000.0],
                        help="offered loads to sweep (requests/second)")
    parser.add_argument("--batch-policy", default="immediate",
                        choices=["immediate", "size", "deadline"])
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    args = parser.parse_args(argv)

    trainer = build_serving_trainer(scale=args.scale)
    results = []
    for rate in args.rates:
        for kind in ("poisson", "bursty"):
            results.append(run_serving(trainer, kind, rate,
                                       policy_name=args.batch_policy))
    emit("serving_sweep", build_table(
        results,
        title=f"Serving sweep ({DATASET}, {NODES}x{GPUS_PER_NODE} GPUs, "
              f"{args.batch_policy} policy; rates {args.rates})",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

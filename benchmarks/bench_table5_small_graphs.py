"""Table 5 — comparison with DGL and single-node DistGNN on small graphs.

Rows: per-epoch runtime of DistGNN (1 CPU node), DGL (single-GPU full
graph), HongTu-IM (in-memory multi-GPU) and HongTu, for GCN and GAT at
2/4/8 layers on reddit_sim and products_sim, with speedups normalized to
DistGNN.

Expected shape (paper): all GPU rows are >=1 order of magnitude faster than
DistGNN; HongTu-IM ~ DGL; HongTu is 1.3-3.8x slower than DGL (host-GPU
offload overhead) but is the only system that handles the deepest GAT
without exhausting memory.
"""


from repro.baselines import DistGNNSimulator, FullGraphTrainer, \
    InMemoryMultiGPUTrainer
from repro.bench import (
    bench_model,
    render_table,
    run_or_oom,
    speedup_vs,
)
from repro.core import HongTuConfig, HongTuTrainer, estimate_for_model
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, CPU_NODE, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

DATASETS = ["reddit_sim", "products_sim"]
LAYER_COUNTS = [2, 4, 8]
HIDDEN = 256  # the paper's hidden dim for the small graphs


def dataset_capacity(graph) -> int:
    """Per-GPU capacity: holds every config except the 8-layer GAT.

    Mirrors the paper's relative thresholds: on the small graphs all systems
    fit until the deepest edge-NN workload, where only HongTu survives
    (Table 5 shows DGL/HongTu-IM OOM on the 8-layer GAT of ogbn-products).
    """
    gat4 = estimate_for_model(
        graph.num_vertices, graph.num_edges,
        bench_model("gat", graph, 4, HIDDEN),
    ).total_bytes
    gat8 = estimate_for_model(
        graph.num_vertices, graph.num_edges,
        bench_model("gat", graph, 8, HIDDEN),
    ).total_bytes
    return (gat4 + gat8) // 2


def run_cell(system, graph, arch, layers, capacity):
    model = bench_model(arch, graph, layers, HIDDEN, seed=1)
    spec = A100_SERVER.with_gpu_memory(capacity)

    if system == "DistGNN":
        return run_or_oom(system, lambda: DistGNNSimulator(
            graph, model, CPU_NODE), epochs=1)
    if system == "DGL":
        return run_or_oom(system, lambda: FullGraphTrainer(
            graph, model, platform=MultiGPUPlatform(spec, num_gpus=1)),
            epochs=1)
    if system == "HongTu-IM":
        return run_or_oom(system, lambda: InMemoryMultiGPUTrainer(
            graph, model, MultiGPUPlatform(spec)), epochs=1)
    if system == "HongTu":
        return run_or_oom(system, lambda: HongTuTrainer(
            graph, model, MultiGPUPlatform(spec),
            HongTuConfig(num_chunks=4, seed=0)), epochs=1)
    raise ValueError(system)


def build_table(arch: str):
    rows = []
    outcomes = {}
    for layers in LAYER_COUNTS:
        cells = {}
        for dataset in DATASETS:
            graph = load_dataset(dataset, scale=BENCH_SCALE)
            capacity = dataset_capacity(graph)
            reference = run_cell("DistGNN", graph, arch, layers, capacity)
            cells[(dataset, "DistGNN")] = (reference, "")
            for system in ["DGL", "HongTu-IM", "HongTu"]:
                outcome = run_cell(system, graph, arch, layers, capacity)
                cells[(dataset, system)] = (
                    outcome, f" ({speedup_vs(reference, outcome)})"
                )
        for system in ["DistGNN", "DGL", "HongTu-IM", "HongTu"]:
            row = [layers, system]
            for dataset in DATASETS:
                outcome, speedup = cells[(dataset, system)]
                row.append(outcome.cell() + speedup)
            rows.append(row)
            outcomes[(layers, system)] = {
                dataset: cells[(dataset, system)][0] for dataset in DATASETS
            }
    table = render_table(
        ["Layers", "System", "RDT epoch s (vs DistGNN)",
         "OPT epoch s (vs DistGNN)"],
        rows,
        title=f"Table 5 ({arch.upper()}): small-graph comparison, "
              "simulated seconds",
    )
    return table, outcomes


def bench_table5_gcn(benchmark):
    table, outcomes = benchmark.pedantic(build_table, args=("gcn",),
                                         rounds=1, iterations=1)
    emit("table5_gcn", table)
    for layers in LAYER_COUNTS:
        for dataset in DATASETS:
            distgnn = outcomes[(layers, "DistGNN")][dataset]
            hongtu = outcomes[(layers, "HongTu")][dataset]
            dgl = outcomes[(layers, "DGL")][dataset]
            # GPU clearly faster than CPU (the paper reports 11-13x; the
            # stand-ins' lower edge density compresses the gap — see
            # EXPERIMENTS.md); HongTu slower than DGL but same order of
            # magnitude.
            assert not hongtu.oom
            assert hongtu.epoch_seconds * 3 < distgnn.epoch_seconds
            if not dgl.oom:
                # Paper: 1.3-3.8x slower than DGL. The stand-ins' lower
                # edge density shifts the balance toward communication, so
                # the bound here is "same order of magnitude".
                assert hongtu.epoch_seconds < 20 * dgl.epoch_seconds


def bench_table5_gat(benchmark):
    table, outcomes = benchmark.pedantic(build_table, args=("gat",),
                                         rounds=1, iterations=1)
    emit("table5_gat", table)
    for layers in LAYER_COUNTS:
        for dataset in DATASETS:
            assert not outcomes[(layers, "HongTu")][dataset].oom
    # The deepest GAT exhausts the in-memory systems; only HongTu runs.
    deepest = outcomes[(LAYER_COUNTS[-1], "DGL")]
    assert any(deepest[dataset].oom for dataset in DATASETS)

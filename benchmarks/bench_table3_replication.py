"""Table 3 — neighbor replication factor α under different partition counts.

Measures α on the three large stand-ins for 2..64 total partitions (the
paper sweeps 2..512 at full scale; at stand-in scale the higher counts
degenerate to near-singleton chunks). The paper's full-scale values are
printed alongside for comparison. Expected shape: α grows monotonically
with partitions, and the social graph (friendster) replicates far more
than the locality-heavy web graph (it-2004).
"""

from repro.bench import render_table
from repro.graph import load_dataset
from repro.partition import replication_factor_sweep

from benchmarks._common import BENCH_SCALE, emit

PARTITION_COUNTS = [2, 4, 8, 16, 32, 64]
DATASETS = ["it2004_sim", "papers_sim", "friendster_sim"]
PAPER_KEYS = {"it2004_sim": "it-2004", "papers_sim": "ogbn-paper",
              "friendster_sim": "friendster"}


def run_sweep():
    results = {}
    for dataset in DATASETS:
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        results[dataset] = replication_factor_sweep(
            graph, PARTITION_COUNTS, seed=0
        )
    return results


def build_table(results) -> str:
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        paper = graph.scale_profile.replication_factors
        measured = results[dataset]
        rows.append(
            [dataset]
            + [f"{measured[count]:.2f} ({paper.get(count, '-')})"
               for count in PARTITION_COUNTS]
        )
    return render_table(
        ["Dataset"] + [str(count) for count in PARTITION_COUNTS],
        rows,
        title="Table 3: neighbor replication factor alpha, measured "
              "(paper full-scale value)",
    )


def bench_table3_replication(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("table3_replication", build_table(results))
    for dataset in DATASETS:
        sweep = results[dataset]
        values = [sweep[count] for count in PARTITION_COUNTS]
        # Monotone growth with partition count.
        assert all(b >= a for a, b in zip(values, values[1:]))
    # Social graph replicates more than the web graph at high counts.
    assert results["friendster_sim"][64] > results["it2004_sim"][64]

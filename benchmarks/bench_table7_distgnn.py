"""Table 7 — HongTu (4 simulated GPUs) vs DistGNN (16 CPU nodes) on the
three large graphs, GCN and GAT at 2/3/4 layers.

Both columns now come from the same event-timeline runtime: DistGNN's
epoch is a per-layer BSP task DAG (``cpu`` kernels + ``net`` replica
sync), HongTu's the usual load/compute/writeback DAG, and each cell is a
timeline makespan. A scale-out companion adds HongTu on a 2-node GPU
cluster (barrier vs pipeline) next to the 16-node CPU cluster.

Expected shape (paper): HongTu wins by roughly an order of magnitude on GCN
(7.8-11.8x) and more on GAT (20.2x where DistGNN even runs); DistGNN OOMs on
most big-graph GAT workloads because the O(|E|) intermediates plus replicas
exceed node memory; the monetary cost of the CPU cluster is >4x the GPU
node's.
"""

import dataclasses

from repro.baselines import DistGNNSimulator
from repro.bench import (
    bench_model,
    capacity_limited_platform,
    render_table,
    run_or_oom,
    speedup_vs,
)
from repro.core import HongTuConfig, HongTuTrainer, estimate_for_model
from repro.graph import load_dataset
from repro.hardware import A100_CLUSTER, CPU_NODE, ClusterPlatform

from benchmarks._common import BENCH_SCALE, emit

DATASETS = ["it2004_sim", "papers_sim", "friendster_sim"]
LAYER_COUNTS = [2, 3, 4]
HIDDEN = 128
NUM_CHUNKS = {"it2004_sim": 8, "papers_sim": 16, "friendster_sim": 16}
#: cluster node memory as a fraction of the *GCN-4* working set: holds all
#: GCN configs (with replicas), but the edge-dominated GAT intermediates
#: overflow it — the paper's OOM pattern.
NODE_MEMORY_FRACTION = 0.30


def scaled_cluster(graph):
    reference_model = bench_model("gcn", graph, 4, HIDDEN, seed=1)
    estimate = estimate_for_model(
        graph.num_vertices, graph.num_edges, reference_model
    )
    node_memory = int(estimate.total_bytes * NODE_MEMORY_FRACTION)
    return dataclasses.replace(
        CPU_NODE.with_num_nodes(16), memory_per_node=node_memory
    )


def run_pair(dataset, arch, layers):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    model = bench_model(arch, graph, layers, HIDDEN, seed=1)
    cluster = scaled_cluster(graph)
    distgnn = run_or_oom("DistGNN", lambda: DistGNNSimulator(
        graph, model, cluster), epochs=1)

    platform = capacity_limited_platform(graph, model, 0.12)
    chunks = NUM_CHUNKS[dataset] * (2 if arch == "gat" else 1)
    hongtu = run_or_oom("HongTu", lambda: HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=chunks, seed=0)), epochs=1)
    return distgnn, hongtu


def build_table():
    rows = []
    outcomes = {}
    for layers in LAYER_COUNTS:
        for dataset in DATASETS:
            cells = [layers, dataset]
            for arch in ["gcn", "gat"]:
                distgnn, hongtu = run_pair(dataset, arch, layers)
                outcomes[(layers, dataset, arch)] = (distgnn, hongtu)
                cells.append(distgnn.cell())
                cells.append(f"{hongtu.cell()} ({speedup_vs(distgnn, hongtu)})")
            rows.append(cells)
    table = render_table(
        ["Layers", "Dataset", "GCN DistGNN", "GCN HongTu (speedup)",
         "GAT DistGNN", "GAT HongTu (speedup)"],
        rows,
        title="Table 7: HongTu (4 GPUs) vs DistGNN (16 CPU nodes), "
              "simulated epoch seconds",
    )
    return table, outcomes


def bench_table7_distgnn(benchmark):
    table, outcomes = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table7_distgnn", table)

    gat_ooms = 0
    for (layers, dataset, arch), (distgnn, hongtu) in outcomes.items():
        assert not hongtu.oom  # HongTu handles every workload
        if arch == "gcn" and not distgnn.oom:
            assert hongtu.epoch_seconds * 2 < distgnn.epoch_seconds
        if arch == "gat" and distgnn.oom:
            gat_ooms += 1
    # DistGNN fails on a majority of the big-graph GAT workloads.
    assert gat_ooms >= 5

    # Monetary comparison (§7.2): 16 CPU nodes cost >4x the GPU server.
    cluster_usd = 16 * CPU_NODE.usd_per_node_hour
    gpu_server_usd = 20.14
    assert cluster_usd > 4 * gpu_server_usd


# ----------------------------------------------------------------------
# scale-out companion: the same timeline runtime prices a 2-node GPU
# cluster next to the paper's two testbeds
# ----------------------------------------------------------------------
def run_scaleout(dataset="papers_sim", layers=2):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    model = bench_model("gcn", graph, layers, HIDDEN, seed=1)
    cluster = scaled_cluster(graph)
    distgnn = DistGNNSimulator(graph, model, cluster)
    distgnn_result = distgnn.train_epoch()

    rows = {"distgnn": distgnn_result}
    for overlap in ["barrier", "pipeline"]:
        model = bench_model("gcn", graph, layers, HIDDEN, seed=1)
        platform = ClusterPlatform(A100_CLUSTER)
        trainer = HongTuTrainer(
            graph, model, platform,
            HongTuConfig(num_chunks=NUM_CHUNKS[dataset], seed=0,
                         overlap=overlap, nodes=2),
        )
        rows[f"hongtu_2x4_{overlap}"] = trainer.train_epoch()
    return rows


def bench_table7_scaleout(benchmark):
    rows = benchmark.pedantic(run_scaleout, rounds=1, iterations=1)
    distgnn = rows["distgnn"]
    barrier = rows["hongtu_2x4_barrier"]
    pipeline = rows["hongtu_2x4_pipeline"]
    table = render_table(
        ["System", "epoch s (timeline makespan)", "net s (serialized)"],
        [
            ["DistGNN 16 CPU nodes", f"{distgnn.epoch_seconds:.6f}",
             f"{distgnn.clock.seconds['net']:.6f}"],
            ["HongTu 2x4 GPUs, barrier", f"{barrier.epoch_seconds:.6f}",
             f"{barrier.clock.seconds['net']:.6f}"],
            ["HongTu 2x4 GPUs, pipeline", f"{pipeline.epoch_seconds:.6f}",
             f"{pipeline.clock.seconds['net']:.6f}"],
        ],
        title="Table 7 scale-out (papers_sim, GCN-2): one timeline runtime, "
              "three cluster schedules",
    )
    emit("table7_scaleout", table)

    # The DistGNN column is a timeline makespan, not an analytic sum.
    assert distgnn.timeline is not None
    assert distgnn.epoch_seconds == distgnn.timeline.makespan
    assert distgnn.timeline.scheduler.busy_seconds(channel="net") > 0
    distgnn.timeline.validate()
    # Multi-node pipeline strictly beats barrier on this transfer-bound
    # workload (halo traffic hides under compute), and the GPU cluster
    # stays far ahead of the CPU cluster.
    assert pipeline.epoch_seconds < barrier.epoch_seconds
    assert pipeline.epoch_seconds * 2 < distgnn.epoch_seconds

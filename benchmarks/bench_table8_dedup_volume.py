"""Table 8 — decomposition of the duplicated neighbor-access volume.

For the three large graphs, measures V_ori, the inter-GPU dedup share
(V_ori − V⁺p2p) and the intra-GPU reuse share (V⁺p2p − V⁺ru), all
normalized by |V|, under the per-graph chunk counts of §7.1.

Expected shape (paper): total host-GPU traffic drops 25-71 %;
ogbn-paper benefits mostly from *intra*-GPU reuse (48.3 % of volume —
co-author locality), while the web graph's low replication leaves less to
deduplicate in absolute terms.
"""

from repro.bench import bench_model, format_bytes, render_table
from repro.comm import measure_volumes, reorganize_partition
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform
from repro.partition import two_level_partition

from benchmarks._common import BENCH_SCALE, emit

#: chunks per partition, scaled from the paper's 8/32/32 (GCN column)
CONFIGS = [("it2004_sim", 8), ("papers_sim", 16), ("friendster_sim", 16)]

PAPER_ROWS = {
    "it2004_sim": "paper: 1.6 | 0.26 (16.2%) | 0.15 (9.2%)",
    "papers_sim": "paper: 8.5 | 0.77 (9.0%) | 4.1 (48.3%)",
    "friendster_sim": "paper: 10.7 | 2.50 (23.3%) | 5.09 (47.6%)",
}


def measure():
    results = {}
    for dataset, chunks in CONFIGS:
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        partition = two_level_partition(graph, 4, chunks, seed=0)
        partition = reorganize_partition(partition).partition
        results[dataset] = measure_volumes(partition)
    return results


def build_table(results):
    rows = []
    for dataset, chunks in CONFIGS:
        volumes = results[dataset]
        normalized = volumes.normalized()
        inter_pct = 100 * volumes.inter_gpu_dedup / volumes.v_ori
        intra_pct = 100 * volumes.intra_gpu_dedup / volumes.v_ori
        rows.append([
            dataset, chunks,
            f"{normalized['v_ori']:.2f}",
            f"{normalized['inter_gpu_dedup']:.2f} ({inter_pct:.1f}%)",
            f"{normalized['intra_gpu_dedup']:.2f} ({intra_pct:.1f}%)",
            f"{100 * volumes.reduction_fraction:.0f}%",
            PAPER_ROWS[dataset],
        ])
    return render_table(
        ["Dataset", "Chunks", "V_ori/|V|", "(V_ori-V+p2p)/|V|",
         "(V+p2p-V+ru)/|V|", "total reduction", "paper values"],
        rows,
        title="Table 8: duplicated-access volume decomposition",
    )


def measure_executed_traffic():
    """Per-epoch executed bytes with the H2D/D2H directions split out."""
    results = {}
    for dataset, chunks in CONFIGS:
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        model = bench_model("gcn", graph, 2, 128, seed=1)
        trainer = HongTuTrainer(
            graph, model, MultiGPUPlatform(A100_SERVER),
            HongTuConfig(num_chunks=chunks, seed=0),
        )
        results[dataset] = trainer.train_epoch()
    return results


def build_traffic_table(results):
    rows = []
    for dataset, chunks in CONFIGS:
        result = results[dataset]
        rows.append([
            dataset, chunks,
            format_bytes(result.h2d_bytes),
            format_bytes(result.d2h_bytes),
            format_bytes(result.d2d_bytes),
        ])
    return render_table(
        ["Dataset", "Chunks", "host->GPU", "GPU->host", "GPU<->GPU"],
        rows,
        title="Executed per-epoch traffic (GCN, 2 layers, full HongTu)",
    )


def bench_table8_dedup_volume(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("table8_dedup_volume", build_table(results))
    traffic = measure_executed_traffic()
    emit("table8_executed_traffic", build_traffic_table(traffic))
    for dataset, _ in CONFIGS:
        # The directional split must be real: both directions carry bytes,
        # and their sum is the pre-split combined figure.
        result = traffic[dataset]
        assert result.h2d_bytes > 0 and result.d2h_bytes > 0
        assert result.pcie_bytes == result.h2d_bytes + result.d2h_bytes

    for dataset, _ in CONFIGS:
        volumes = results[dataset]
        # The paper's headline: 25-71 % of host-GPU rows eliminated. Allow a
        # slightly wider floor at stand-in scale.
        assert volumes.reduction_fraction > 0.20
        assert volumes.v_ori > volumes.v_p2p > volumes.v_ru
    # Locality-rich citation graph leans on intra-GPU reuse more than the
    # web graph does in absolute normalized volume.
    assert results["papers_sim"].intra_gpu_dedup / \
        results["papers_sim"].num_vertices > \
        results["it2004_sim"].intra_gpu_dedup / \
        results["it2004_sim"].num_vertices

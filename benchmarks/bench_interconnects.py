"""§5.3 "Effectiveness with various interconnects".

The paper argues the framework helps on every server class: with NVLink,
both inter-GPU dedup (+P2P) and intra-GPU reuse (+RU) pay off; on a
PCIe-only server where T_dd == T_hd, P2P brings nothing but RU alone still
"yields considerable reductions".

This bench trains the same GCN workload on the NVLink platform and the
PCIe-only platform under the four communication modes.
"""

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, PCIE_ONLY_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

DATASET = "papers_sim"
CHUNKS = 16
HIDDEN = 128
MODES = ["baseline", "p2p", "ru", "hongtu"]


def run_matrix():
    graph = load_dataset(DATASET, scale=BENCH_SCALE)
    results = {}
    for spec in (A100_SERVER, PCIE_ONLY_SERVER):
        for mode in MODES:
            model = bench_model("gcn", graph, 3, HIDDEN, seed=1)
            trainer = HongTuTrainer(
                graph, model, MultiGPUPlatform(spec),
                HongTuConfig(num_chunks=CHUNKS, comm_mode=mode, seed=0),
            )
            results[(spec.name, mode)] = trainer.train_epoch()
    return results


def build_table(results):
    rows = []
    for (platform, mode), result in results.items():
        rows.append([
            platform, mode,
            f"{result.epoch_seconds:.5f}",
            f"{result.clock.seconds['h2d']:.5f}",
            f"{result.clock.seconds['d2h']:.5f}",
            f"{result.clock.seconds['d2d']:.5f}",
        ])
    return render_table(
        ["Platform", "Mode", "Epoch s", "H2D s", "D2H s", "D2D s"],
        rows,
        title="Interconnect sensitivity (GCN on papers_sim, simulated)",
    )


def bench_interconnects(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    emit("interconnect_sensitivity", build_table(results))

    nvlink, pcie = A100_SERVER.name, PCIE_ONLY_SERVER.name
    # NVLink: the full ladder is monotone.
    assert results[(nvlink, "p2p")].epoch_seconds < \
        results[(nvlink, "baseline")].epoch_seconds
    assert results[(nvlink, "hongtu")].epoch_seconds < \
        results[(nvlink, "p2p")].epoch_seconds
    # PCIe-only: RU alone still clearly beats the baseline...
    assert results[(pcie, "ru")].epoch_seconds < \
        0.95 * results[(pcie, "baseline")].epoch_seconds
    # ...while P2P helps far less than it does on NVLink (T_dd == T_hd).
    nvlink_p2p_gain = (results[(nvlink, "baseline")].epoch_seconds
                       / results[(nvlink, "p2p")].epoch_seconds)
    pcie_p2p_gain = (results[(pcie, "baseline")].epoch_seconds
                     / results[(pcie, "p2p")].epoch_seconds)
    assert nvlink_p2p_gain > pcie_p2p_gain

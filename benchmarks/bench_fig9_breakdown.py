"""Figure 9 — per-component time breakdown across the optimization ladder.

For GCN and GAT at 2/3/4 layers on the three large graphs, runs the three
communication configurations:

* Baseline — each chunk's neighbor set transferred individually,
* +P2P     — inter-GPU deduplication added,
* +RU      — intra-GPU reuse added on top (full HongTu),

and reports the GPU / H2D / D2H / D2D / CPU split of the simulated epoch
(the paper's combined "H2D" bar is the H2D + D2H sum here — this
reproduction splits the PCIe directions).

Expected shape (paper): the ladder monotonically reduces epoch time for an
overall 1.3-3.4x gain; H2D shrinks at each step while D2D appears with
+P2P; GCN is communication-dominated while GAT's GPU share is much larger.

``bench_fig9_overlap`` additionally runs the full HongTu configuration
under both overlap policies of the event-timeline engine: ``barrier``
reproduces the serialized Fig. 9 accounting, ``pipeline`` prefetches batch
j+1's host loads under batch j's kernels and must be strictly faster.
"""

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit, emit_json, timed_call

DATASETS = ["it2004_sim", "papers_sim", "friendster_sim"]
LAYER_COUNTS = [2, 3, 4]
HIDDEN = 128
NUM_CHUNKS = {"it2004_sim": 8, "papers_sim": 16, "friendster_sim": 16}
LADDER = [("Baseline", "baseline"), ("+P2P", "p2p"), ("+RU", "hongtu")]


def run_cell(dataset, arch, layers, comm_mode, overlap="barrier"):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    chunks = NUM_CHUNKS[dataset] * (2 if arch == "gat" else 1)
    model = bench_model(arch, graph, layers, HIDDEN, seed=1)
    trainer = HongTuTrainer(
        graph, model, MultiGPUPlatform(A100_SERVER),
        HongTuConfig(num_chunks=chunks, comm_mode=comm_mode, seed=0,
                     overlap=overlap),
    )
    return trainer.train_epoch()


def build_tables(arch):
    rows = []
    results = {}
    for dataset in DATASETS:
        for layers in LAYER_COUNTS:
            for label, mode in LADDER:
                result = run_cell(dataset, arch, layers, mode)
                results[(dataset, layers, label)] = result
                seconds = result.clock.seconds
                rows.append([
                    dataset, layers, label,
                    f"{seconds['gpu']:.5f}", f"{seconds['h2d']:.5f}",
                    f"{seconds['d2h']:.5f}", f"{seconds['d2d']:.5f}",
                    f"{seconds['cpu']:.5f}",
                    f"{result.epoch_seconds:.5f}",
                ])
    table = render_table(
        ["Dataset", "Layers", "Config", "GPU", "H2D", "D2H", "D2D", "CPU",
         "Total"],
        rows,
        title=f"Figure 9 ({arch.upper()}): time breakdown, simulated "
              "seconds per epoch",
    )
    return table, results


def _check_shapes(results):
    for dataset in DATASETS:
        for layers in LAYER_COUNTS:
            baseline = results[(dataset, layers, "Baseline")]
            p2p = results[(dataset, layers, "+P2P")]
            full = results[(dataset, layers, "+RU")]
            # Ladder is monotone and the full stack wins by >= 1.15x.
            assert p2p.epoch_seconds <= baseline.epoch_seconds
            assert full.epoch_seconds <= p2p.epoch_seconds
            assert baseline.epoch_seconds > 1.15 * full.epoch_seconds
            # H2D shrinks along the ladder; D2D appears with +P2P.
            assert p2p.clock.seconds["h2d"] < baseline.clock.seconds["h2d"]
            assert full.clock.seconds["h2d"] <= p2p.clock.seconds["h2d"]
            assert p2p.clock.seconds["d2d"] > 0


def bench_fig9_gcn(benchmark):
    (table, results), wall = timed_call(
        benchmark.pedantic, build_tables, args=("gcn",),
        rounds=1, iterations=1)
    emit("fig9_breakdown_gcn", table)
    metrics = {
        f"{dataset}_l{layers}_{label.lstrip('+').lower()}_seconds":
            results[(dataset, layers, label)].epoch_seconds
        for dataset in DATASETS
        for layers in LAYER_COUNTS
        for label, _mode in LADDER
    }
    metrics["sim_wall_seconds"] = wall
    emit_json("fig9_breakdown_gcn", metrics,
              step="Benchmark smoke (Fig. 9 breakdown + overlap, JSON metrics)")
    _check_shapes(results)


def bench_fig9_gat(benchmark):
    table, results = benchmark.pedantic(build_tables, args=("gat",),
                                        rounds=1, iterations=1)
    emit("fig9_breakdown_gat", table)
    _check_shapes(results)
    # GAT's GPU share exceeds GCN's (heavy edge computation).
    gcn_sample = run_cell("it2004_sim", "gcn", 3, "hongtu")
    gat_sample = results[("it2004_sim", 3, "+RU")]
    gcn_share = gcn_sample.clock.seconds["gpu"] / gcn_sample.epoch_seconds
    gat_share = gat_sample.clock.seconds["gpu"] / gat_sample.epoch_seconds
    assert gat_share > gcn_share


def build_overlap_table():
    rows = []
    results = {}
    for dataset in DATASETS:
        for overlap in ("barrier", "pipeline"):
            result = run_cell(dataset, "gcn", 3, "hongtu", overlap=overlap)
            results[(dataset, overlap)] = result
            rows.append([
                dataset, overlap,
                f"{result.epoch_seconds:.5f}",
                f"{result.clock.total:.5f}",
                f"{result.timeline.overlap_saving():.5f}",
            ])
    table = render_table(
        ["Dataset", "Overlap", "Makespan", "Serialized", "Hidden"],
        rows,
        title="Pipelined transfer/compute overlap (GCN, 3 layers, +RU)",
    )
    return table, results


def bench_fig9_overlap(benchmark):
    (table, results), wall = timed_call(
        benchmark.pedantic, build_overlap_table, rounds=1, iterations=1)
    emit("fig9_overlap", table)
    metrics = {
        f"{dataset}_{overlap}_seconds":
            results[(dataset, overlap)].epoch_seconds
        for dataset in DATASETS
        for overlap in ("barrier", "pipeline")
    }
    metrics["sim_wall_seconds"] = wall
    emit_json("fig9_overlap", metrics,
              step="Benchmark smoke (Fig. 9 breakdown + overlap, JSON metrics)")
    for dataset in DATASETS:
        barrier = results[(dataset, "barrier")]
        pipeline = results[(dataset, "pipeline")]
        # Pipelining must strictly beat the barrier schedule, component
        # breakdowns must agree (same work, different schedule), and the
        # timelines must be valid (no channel overlap, deps respected).
        assert pipeline.epoch_seconds < barrier.epoch_seconds
        for category, seconds in barrier.clock.seconds.items():
            assert abs(pipeline.clock.seconds[category] - seconds) \
                <= 1e-12 + 1e-9 * seconds
        pipeline.timeline.validate()
        barrier.timeline.validate()

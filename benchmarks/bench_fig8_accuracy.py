"""Figure 8 — validation-accuracy curves: full-graph vs mini-batch GCN.

Trains three systems on reddit_sim and products_sim:

* DGL-FG  — monolithic full-graph training (the reference),
* HongTu-FG — chunked offloaded training (must track DGL-FG exactly),
* DGL-MB  — sampled mini-batch training (fanout 10).

Expected shape (paper): HongTu-FG and DGL-FG curves coincide (identical
semantics); mini-batch reaches a different operating point — slightly lower
validation accuracy on reddit, competitive on products.
"""


from repro.autograd import Adam
from repro.baselines import FullGraphTrainer, MiniBatchTrainer
from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import emit

EPOCHS = 40
CHECK_EVERY = 5
SCALE = 0.25  # accuracy runs train for many epochs; keep graphs modest
HIDDEN = 64


def train_curves(dataset):
    graph = load_dataset(dataset, scale=SCALE)

    def model():
        return bench_model("gcn", graph, 2, HIDDEN, seed=7)

    reference_model = model()
    reference = FullGraphTrainer(
        graph, reference_model,
        optimizer=Adam(reference_model.parameters(), lr=0.01),
    )
    hongtu_model = model()
    hongtu = HongTuTrainer(
        graph, hongtu_model, MultiGPUPlatform(A100_SERVER),
        HongTuConfig(num_chunks=4, seed=0),
        optimizer=Adam(hongtu_model.parameters(), lr=0.01),
    )
    minibatch_model = model()
    minibatch = MiniBatchTrainer(
        graph, minibatch_model, MultiGPUPlatform(A100_SERVER),
        fanout=10, batch_size=128,
        optimizer=Adam(minibatch_model.parameters(), lr=0.01),
    )

    curves = {"DGL-FG": [], "HongTu-FG": [], "DGL-MB": []}
    for epoch in range(1, EPOCHS + 1):
        reference.train_epoch()
        hongtu.train_epoch()
        minibatch.train_epoch()
        if epoch % CHECK_EVERY == 0:
            curves["DGL-FG"].append(reference.evaluate())
            curves["HongTu-FG"].append(hongtu.evaluate())
            curves["DGL-MB"].append(minibatch.evaluate())
    return curves


def build_table(dataset, curves):
    rows = []
    epochs = list(range(CHECK_EVERY, EPOCHS + 1, CHECK_EVERY))
    for index, epoch in enumerate(epochs):
        rows.append([
            epoch,
            f"{curves['DGL-FG'][index]['val_accuracy']:.3f}",
            f"{curves['HongTu-FG'][index]['val_accuracy']:.3f}",
            f"{curves['DGL-MB'][index]['val_accuracy']:.3f}",
        ])
    final = [
        "final (val, test)",
        _final(curves["DGL-FG"]),
        _final(curves["HongTu-FG"]),
        _final(curves["DGL-MB"]),
    ]
    rows.append(final)
    return render_table(
        ["Epoch", "DGL-FG val", "HongTu-FG val", "DGL-MB val"],
        rows,
        title=f"Figure 8 ({dataset}): GCN validation accuracy curves",
    )


def _final(curve):
    last = curve[-1]
    return f"({last['val_accuracy']:.3f}, {last['test_accuracy']:.3f})"


def _run_and_check(dataset):
    curves = train_curves(dataset)
    table = build_table(dataset, curves)

    # HongTu-FG must coincide with DGL-FG at every checkpoint.
    for ref, ht in zip(curves["DGL-FG"], curves["HongTu-FG"]):
        assert abs(ref["val_accuracy"] - ht["val_accuracy"]) < 1e-9

    final_fg = curves["DGL-FG"][-1]["val_accuracy"]
    final_mb = curves["DGL-MB"][-1]["val_accuracy"]
    graph = load_dataset(dataset, scale=SCALE)
    random_guess = 1.0 / graph.num_classes
    # Both paradigms learn far beyond chance...
    assert final_fg > 3 * random_guess
    assert final_mb > 3 * random_guess
    # ...and land within a few points of each other (Fig. 8's story).
    assert abs(final_fg - final_mb) < 0.15
    return table


def bench_fig8_reddit(benchmark):
    table = benchmark.pedantic(_run_and_check, args=("reddit_sim",),
                               rounds=1, iterations=1)
    emit("fig8_accuracy_reddit", table)


def bench_fig8_products(benchmark):
    table = benchmark.pedantic(_run_and_check, args=("products_sim",),
                               rounds=1, iterations=1)
    emit("fig8_accuracy_products", table)

"""Simulator scale — wall-clock cost of simulating thousand-GPU epochs.

Every other benchmark reports *simulated* seconds; this one reports how
long the simulator itself takes to produce them. The vectorized core
(array-backed scheduler + batched task emission) is what makes placement
and topology sweeps over O(1000) GPUs routine, and this benchmark is the
demonstration and the regression gate for that property:

* ``bench_simulator_scale_smoke`` runs a small multi-node pipelined epoch
  twice — once through the vectorized ``submit_batch`` path and once with
  the scheduler's scalar core forced — asserts the makespans and
  cross-node byte flows are bit-identical, and archives the wall-clock
  (``sim_wall_seconds``) for the CI gate.
* ``python benchmarks/bench_simulator_scale.py --nodes 128 --gpus 8``
  simulates a full 1024-GPU pipelined epoch end-to-end and prints the
  phase-by-phase wall clock (partition, plan build, epoch); ``--profile``
  wraps the epoch in cProfile and dumps the top-25 cumulative entries.

Wall-clock metrics are machine-dependent, so the regression gate applies
the separate ``--wall-tolerance`` headroom (2x by default) instead of the
15% simulated-metric tolerance — loose enough for runner jitter, tight
enough to catch the hot path going quadratic again.
"""

import argparse
import time

import numpy as np

from repro.autograd import SGD
from repro.bench import render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import A100_CLUSTER, A100_SERVER, ClusterPlatform
from repro.runtime import EventScheduler

from benchmarks._common import emit, emit_json

DATASET = "it2004_sim"
HIDDEN = 32
NUM_CHUNKS = 2


def run_scale_epoch(nodes, gpus_per_node, scale, hidden=HIDDEN,
                    num_chunks=NUM_CHUNKS, overlap="pipeline", seed=0):
    """Simulate one pipelined epoch on a nodes × gpus_per_node cluster.

    Returns wall-clock phases (graph/partition+plan build inside trainer
    construction vs the epoch itself), the simulated makespan, and the
    number of scheduled tasks.
    """
    graph = load_dataset(DATASET, scale=scale, seed=2)
    cluster = A100_CLUSTER.with_num_nodes(nodes).with_node(
        A100_SERVER.with_num_gpus(gpus_per_node))
    platform = ClusterPlatform(cluster)
    model = build_model(
        "gcn", [graph.feature_dim, hidden, graph.num_classes],
        np.random.default_rng(7))
    started = time.perf_counter()
    trainer = HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=num_chunks, overlap=overlap, nodes=nodes,
                     seed=seed),
        optimizer=SGD(model.parameters(), lr=0.02),
    )
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    result = trainer.train_epoch()
    epoch_seconds = time.perf_counter() - started
    return {
        "num_gpus": nodes * gpus_per_node,
        "build_wall_seconds": build_seconds,
        "epoch_wall_seconds": epoch_seconds,
        "sim_wall_seconds": build_seconds + epoch_seconds,
        "makespan_seconds": result.epoch_seconds,
        "num_tasks": result.timeline.scheduler.num_tasks,
        "net_bytes": result.net_bytes,
        "result": result,
    }


def build_table(measurements):
    rows = [
        [f"{m['num_gpus']} GPUs", f"{m['build_wall_seconds']:.2f}",
         f"{m['epoch_wall_seconds']:.2f}", f"{m['num_tasks']}",
         f"{m['makespan_seconds']:.6f}"]
        for m in measurements
    ]
    return render_table(
        ["Cluster", "build wall s", "epoch wall s", "tasks",
         "simulated epoch s"],
        rows,
        title=f"Simulator scale ({DATASET}, GCN, pipelined): wall clock "
              "to simulate one epoch",
    )


# ----------------------------------------------------------------------
# CI smoke: small cluster + batched-vs-scalar bit-identity
# ----------------------------------------------------------------------
def run_smoke():
    kwargs = dict(nodes=2, gpus_per_node=2, scale=0.5)
    batched = run_scale_epoch(**kwargs)
    try:
        EventScheduler.vectorized = False
        scalar = run_scale_epoch(**kwargs)
    finally:
        EventScheduler.vectorized = True
    return batched, scalar


def check_smoke(batched, scalar):
    # The vectorized wave scheduler must be bit-identical to the scalar
    # submit loop — same makespan, same per-flow network bytes, same
    # task count (the acceptance contract of the SoA core).
    assert batched["makespan_seconds"] == scalar["makespan_seconds"]
    assert batched["num_tasks"] == scalar["num_tasks"]
    assert batched["net_bytes"] == scalar["net_bytes"]
    batched["result"].timeline.validate()


def bench_simulator_scale_smoke(benchmark):
    batched, scalar = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    emit("simulator_scale_smoke", build_table([batched]))
    emit_json("simulator_scale_smoke", {
        "makespan_seconds": batched["makespan_seconds"],
        "num_tasks": batched["num_tasks"],
        "sim_wall_seconds": batched["sim_wall_seconds"],
    }, step="Benchmark smoke (simulator scale, batched vs scalar identity)")
    check_smoke(batched, scalar)


# ----------------------------------------------------------------------
# CLI: thousand-GPU demonstration (+ --profile hot-path dump)
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Wall-clock cost of simulating a large-cluster epoch")
    parser.add_argument("--nodes", type=int, default=128,
                        help="cluster nodes (default 128)")
    parser.add_argument("--gpus", type=int, default=8,
                        help="GPUs per node (default 8)")
    parser.add_argument("--scale", type=float, default=8.0,
                        help=f"{DATASET} dataset scale (default 8.0)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the run in cProfile and dump the "
                             "top-25 cumulative entries")
    args = parser.parse_args(argv)

    def run():
        return run_scale_epoch(args.nodes, args.gpus, args.scale)

    if args.profile:
        import cProfile
        import pstats
        profiler = cProfile.Profile()
        measurement = profiler.runcall(run)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        measurement = run()
    emit("simulator_scale", build_table([measurement]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 11 — scaling from 1 to 4 GPUs.

Runs GCN and GAT on each large graph with 1, 2, 3 and 4 GPUs and reports
speedup normalized to 1 GPU.

Expected shape (paper): 3.3-3.8x at 4 GPUs; the step from 1->2 GPUs scales
worse than 2->4 because with <=2 GPUs the host vertex data cannot be placed
NUMA-locally and H2D traffic crosses the QPI bus (§7.6).
"""

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

DATASETS = ["it2004_sim", "papers_sim", "friendster_sim"]
GPU_COUNTS = [1, 2, 3, 4]
HIDDEN = 128
NUM_CHUNKS = {"it2004_sim": 8, "papers_sim": 16, "friendster_sim": 16}


def run_arch(arch):
    results = {}
    for dataset in DATASETS:
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        for num_gpus in GPU_COUNTS:
            model = bench_model(arch, graph, 2, HIDDEN, seed=1)
            platform = MultiGPUPlatform(A100_SERVER, num_gpus=num_gpus)
            trainer = HongTuTrainer(
                graph, model, platform,
                HongTuConfig(num_chunks=NUM_CHUNKS[dataset], seed=0),
            )
            results[(dataset, num_gpus)] = trainer.train_epoch().epoch_seconds
    return results


def build_table(arch, results):
    rows = []
    for dataset in DATASETS:
        base = results[(dataset, 1)]
        rows.append(
            [dataset]
            + [f"{base / results[(dataset, g)]:.2f}x" for g in GPU_COUNTS]
        )
    return render_table(
        ["Dataset"] + [f"{g} GPU" for g in GPU_COUNTS],
        rows,
        title=f"Figure 11 ({arch.upper()}): speedup vs 1 GPU",
    )


def _check(results):
    for dataset in DATASETS:
        base = results[(dataset, 1)]
        speedups = {g: base / results[(dataset, g)] for g in GPU_COUNTS}
        # More GPUs never slower; 4 GPUs deliver a clear (>2x) speedup.
        assert speedups[2] >= 1.0
        assert speedups[4] > speedups[2] >= speedups[1]
        assert speedups[4] > 2.0
        # NUMA effect: the 2->4 step gains more than the 1->2 step
        # (<=2 GPUs pay remote-socket host access, §7.6).
        assert speedups[4] / speedups[2] > speedups[2] / speedups[1] * 0.9


def bench_fig11_scaling_gcn(benchmark):
    results = benchmark.pedantic(run_arch, args=("gcn",), rounds=1,
                                 iterations=1)
    emit("fig11_scaling_gcn", build_table("gcn", results))
    _check(results)


def bench_fig11_scaling_gat(benchmark):
    results = benchmark.pedantic(run_arch, args=("gat",), rounds=1,
                                 iterations=1)
    emit("fig11_scaling_gat", build_table("gat", results))
    _check(results)

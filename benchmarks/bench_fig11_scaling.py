"""Figure 11 — scaling from 1 to 4 GPUs, extended to multi-node clusters.

Runs GCN and GAT on each large graph with 1, 2, 3 and 4 GPUs and reports
speedup normalized to 1 GPU; a scale-out companion table then grows the
same workload from one 4-GPU server to 2 and 4 such nodes on the simulated
cluster (beyond the paper, which stops at one server).

Expected shape (paper): 3.3-3.8x at 4 GPUs; the step from 1->2 GPUs scales
worse than 2->4 because with <=2 GPUs the host vertex data cannot be placed
NUMA-locally and H2D traffic crosses the QPI bus (§7.6). Scale-out shape:
the stand-in graphs are halo-bound (cross-node fetches at network speed
dwarf the kernel time they parallelize), so nodes do NOT speed these
workloads up — the quantitative version of the paper's argument for
scale-up-within-one-server — and pipeline overlap strictly beats barrier
at every node count by hiding part of the halo traffic under compute.
"""

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import (
    A100_CLUSTER,
    A100_SERVER,
    ClusterPlatform,
    MultiGPUPlatform,
)

from benchmarks._common import BENCH_SCALE, emit

DATASETS = ["it2004_sim", "papers_sim", "friendster_sim"]
GPU_COUNTS = [1, 2, 3, 4]
NODE_COUNTS = [1, 2, 4]
HIDDEN = 128
NUM_CHUNKS = {"it2004_sim": 8, "papers_sim": 16, "friendster_sim": 16}


def run_arch(arch):
    results = {}
    for dataset in DATASETS:
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        for num_gpus in GPU_COUNTS:
            model = bench_model(arch, graph, 2, HIDDEN, seed=1)
            platform = MultiGPUPlatform(A100_SERVER, num_gpus=num_gpus)
            trainer = HongTuTrainer(
                graph, model, platform,
                HongTuConfig(num_chunks=NUM_CHUNKS[dataset], seed=0),
            )
            results[(dataset, num_gpus)] = trainer.train_epoch().epoch_seconds
    return results


def build_table(arch, results):
    rows = []
    for dataset in DATASETS:
        base = results[(dataset, 1)]
        rows.append(
            [dataset]
            + [f"{base / results[(dataset, g)]:.2f}x" for g in GPU_COUNTS]
        )
    return render_table(
        ["Dataset"] + [f"{g} GPU" for g in GPU_COUNTS],
        rows,
        title=f"Figure 11 ({arch.upper()}): speedup vs 1 GPU",
    )


def _check(results):
    for dataset in DATASETS:
        base = results[(dataset, 1)]
        speedups = {g: base / results[(dataset, g)] for g in GPU_COUNTS}
        # More GPUs never slower; 4 GPUs deliver a clear (>2x) speedup.
        assert speedups[2] >= 1.0
        assert speedups[4] > speedups[2] >= speedups[1]
        assert speedups[4] > 2.0
        # NUMA effect: the 2->4 step gains more than the 1->2 step
        # (<=2 GPUs pay remote-socket host access, §7.6).
        assert speedups[4] / speedups[2] > speedups[2] / speedups[1] * 0.9


def bench_fig11_scaling_gcn(benchmark):
    results = benchmark.pedantic(run_arch, args=("gcn",), rounds=1,
                                 iterations=1)
    emit("fig11_scaling_gcn", build_table("gcn", results))
    _check(results)


def bench_fig11_scaling_gat(benchmark):
    results = benchmark.pedantic(run_arch, args=("gat",), rounds=1,
                                 iterations=1)
    emit("fig11_scaling_gat", build_table("gat", results))
    _check(results)


# ----------------------------------------------------------------------
# scale-out companion: N nodes x 4 GPUs on the simulated cluster
# ----------------------------------------------------------------------
def run_nodes(dataset="papers_sim", arch="gcn"):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    results = {}
    for nodes in NODE_COUNTS:
        for overlap in ["barrier", "pipeline"]:
            model = bench_model(arch, graph, 2, HIDDEN, seed=1)
            platform = (MultiGPUPlatform(A100_SERVER) if nodes == 1
                        else ClusterPlatform(A100_CLUSTER.with_num_nodes(nodes)))
            trainer = HongTuTrainer(
                graph, model, platform,
                HongTuConfig(num_chunks=NUM_CHUNKS[dataset], seed=0,
                             overlap=overlap, nodes=nodes),
            )
            result = trainer.train_epoch()
            results[(nodes, overlap)] = (
                result.epoch_seconds, result.clock.seconds["net"]
            )
    return results


def build_nodes_table(dataset, results):
    rows = []
    for nodes in NODE_COUNTS:
        barrier, net = results[(nodes, "barrier")]
        pipeline, _ = results[(nodes, "pipeline")]
        rows.append([
            f"{nodes}x4 GPUs", f"{barrier:.6f}", f"{pipeline:.6f}",
            f"{(barrier - pipeline) / barrier:.1%}", f"{net:.6f}",
        ])
    return render_table(
        ["Cluster", "barrier s", "pipeline s", "hidden by overlap",
         "net s (serialized)"],
        rows,
        title=f"Figure 11 scale-out ({dataset}, GCN): epoch seconds on "
              "N nodes x 4 GPUs",
    )


def bench_fig11_scaling_nodes(benchmark):
    results = benchmark.pedantic(run_nodes, rounds=1, iterations=1)
    emit("fig11_scaling_nodes", build_nodes_table("papers_sim", results))
    for nodes in NODE_COUNTS:
        barrier, net = results[(nodes, "barrier")]
        pipeline, _ = results[(nodes, "pipeline")]
        # Pipeline never loses; on multi-node it strictly hides halo
        # traffic under compute (the transfer-bound regime).
        assert pipeline <= barrier
        if nodes > 1:
            assert pipeline < barrier
            assert net > 0.0
        else:
            assert net == 0.0

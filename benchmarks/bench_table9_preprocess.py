"""Table 9 — cost of communication deduplication.

Compares 100-epoch 2-layer GCN runtime with and without the communication
deduplication (CD) machinery, plus the one-off preprocessing time of the
cost-model-guided reorganization + plan construction.

Expected shape (paper): CD speeds up 100-epoch training by ~1.4-4x while
preprocessing adds ~1 % — it runs once, the epochs repeat.
"""

import time

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

CONFIGS = [("it2004_sim", 8), ("papers_sim", 16), ("friendster_sim", 16)]
EPOCHS = 100
HIDDEN = 128


def run_config(dataset, chunks):
    graph = load_dataset(dataset, scale=BENCH_SCALE)

    def epoch_seconds(comm_mode, reorganize):
        model = bench_model("gcn", graph, 2, HIDDEN, seed=1)
        started = time.perf_counter()
        trainer = HongTuTrainer(
            graph, model, MultiGPUPlatform(A100_SERVER),
            HongTuConfig(num_chunks=chunks, comm_mode=comm_mode,
                         reorganize=reorganize, seed=0),
        )
        preprocessing = time.perf_counter() - started
        result = trainer.train_epoch()
        return result.epoch_seconds, preprocessing

    without_cd, _ = epoch_seconds("baseline", reorganize=False)
    with_cd, preprocessing = epoch_seconds("hongtu", reorganize=True)
    return {
        "without_cd_100ep": without_cd * EPOCHS,
        "with_cd_100ep": with_cd * EPOCHS,
        "preprocessing": preprocessing,
    }


def run_all():
    return {dataset: run_config(dataset, chunks)
            for dataset, chunks in CONFIGS}


def build_table(results):
    rows = []
    for dataset, _ in CONFIGS:
        r = results[dataset]
        speedup = r["without_cd_100ep"] / max(r["with_cd_100ep"], 1e-12)
        rows.append([
            dataset,
            f"{r['without_cd_100ep']:.4f}",
            f"{r['with_cd_100ep']:.4f}",
            f"{speedup:.2f}x",
            f"+{r['preprocessing']:.3f}s wall, once",
        ])
    return render_table(
        ["Dataset", "100-epoch w/o CD (s)", "100-epoch w/ CD (s)",
         "CD speedup", "Preprocessing"],
        rows,
        title="Table 9: cost of communication deduplication "
              "(2-layer GCN, 100 epochs). Epoch columns are simulated "
              "seconds; preprocessing is one-off measured wall time of the "
              "Python reorganizer + planner (the paper's C++ preprocessing "
              "adds <=1.5% of its 100-epoch runtime).",
    )


def bench_table9_preprocess(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("table9_preprocess", build_table(results))
    for dataset, _ in CONFIGS:
        r = results[dataset]
        # CD pays for itself across 100 epochs.
        assert r["with_cd_100ep"] < r["without_cd_100ep"]

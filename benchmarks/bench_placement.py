"""Partition-level placement search — block vs searched node assignment.

The contiguous-block partition→node map inherits whatever locality the
METIS ordering happens to have. This benchmark makes the assumption fail
on purpose: the web-crawl graph's partitions are relabeled round-robin
(``permute_partitions``), scattering each node's natural neighbors
across the cluster, and the placement search
(:func:`repro.partition.search_placement`) has to recover the grouping —
and often beat it, since METIS ordering is not partition-pair optimal.

Reported per layout (block / searched), on a 2-node spine cluster:

* predicted cross-node halo rows (fetch + load + flush, the search
  objective — strictly fewer under the searched placement),
* the executor's measured halo-fetch bytes (byte-for-byte equal to the
  ``halo_volumes`` prediction under the same placement — the
  acceptance contract), and
* the simulated epoch makespan of a full trainer run with
  ``HongTuConfig(placement=...)``.

A ``flat`` single-node run under both policies closes the table: the
search is a no-op there and the makespans must be float-identical.

The ``smoke`` variant runs a tiny scale so CI can gate on it; both
variants archive simulated metrics via ``emit_json`` for the
bench-regression harness.
"""

import numpy as np

from repro.autograd import SGD
from repro.comm import ClusterCostModel, DedupCommunicator, build_comm_plan
from repro.core import HongTuConfig, HongTuTrainer
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import (
    A100_CLUSTER,
    A100_SERVER,
    ClusterPlatform,
    MultiGPUPlatform,
    NetworkTopology,
    TimeBreakdown,
)
from repro.partition import (
    halo_volumes,
    partition_nodes,
    permute_partitions,
    search_placement,
    two_level_partition,
)
from repro.bench import render_table

from benchmarks._common import BENCH_SCALE, emit, emit_json, timed_call

DATASET = "it2004_sim"  # crawl-ordered web graph: strong METIS locality
NODES = 2
GPUS_PER_NODE = 4
NUM_CHUNKS = 4
HIDDEN = 32
OVERSUBSCRIPTION = 4.0


def skew_perm(m, nodes):
    """Round-robin relabeling: each new node block hosts a stride-``m/g``
    sample of the METIS ordering instead of a contiguous run (m=8, 2
    nodes → new node 0 gets old partitions 0, 2, 4, 6)."""
    g = m // nodes
    return np.arange(m, dtype=np.int64).reshape(g, nodes).T.reshape(m)


def measured_fetch_bytes(partition, platform, dim=HIDDEN):
    """Executor-measured cross-node halo-fetch bytes of one full-dedup
    forward+backward sweep (the F term of the search objective)."""
    plan = build_comm_plan(partition, dedup_inter=True, dedup_intra=True)
    comm = DedupCommunicator(plan, platform, 4)
    host = np.zeros((partition.graph.num_vertices, dim))
    grads = np.zeros_like(host)
    clock = TimeBreakdown()
    comm.start_sweep(dim)
    for j in range(plan.num_batches):
        outputs = comm.load_batch_forward(j, host, clock)
        comm.accumulate_batch_backward(
            j, [out.copy() for out in outputs], grads, clock)
    comm.end_sweep()
    return comm.net_bytes_by_flow.get("halo_fetch", {})


def epoch_makespan(graph, partition, placement_policy):
    """Simulated epoch seconds of the full trainer on the spine cluster."""
    topology = NetworkTopology("spine", oversubscription=OVERSUBSCRIPTION)
    cluster = A100_CLUSTER.with_num_nodes(NODES).with_topology(topology)
    platform = ClusterPlatform(cluster, gpus_per_node=GPUS_PER_NODE)
    model = build_model("gcn", [graph.feature_dim, HIDDEN,
                                graph.num_classes],
                        np.random.default_rng(7))
    trainer = HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=NUM_CHUNKS, overlap="pipeline",
                     nodes=NODES, topology="spine",
                     oversubscription=OVERSUBSCRIPTION,
                     placement=placement_policy, seed=0),
        optimizer=SGD(model.parameters(), lr=0.02),
        partition=partition,
    )
    result = trainer.train_epoch()
    result.timeline.validate()
    return result.epoch_seconds, trainer


def run_placement(scale=BENCH_SCALE):
    graph = load_dataset(DATASET, scale=scale, seed=5)
    m = NODES * GPUS_PER_NODE
    partition = two_level_partition(graph, m, NUM_CHUNKS, seed=0)
    skewed = permute_partitions(partition, skew_perm(m, NODES))

    cluster_model = ClusterCostModel.from_cluster(
        A100_CLUSTER.with_topology(
            NetworkTopology("spine", oversubscription=OVERSUBSCRIPTION))
    )
    searched = search_placement(skewed, NODES, cluster_model=cluster_model,
                                row_bytes=HIDDEN * 4)

    # Byte-check: the executor must ship exactly what the model predicts,
    # per directed node pair, under both placements.
    row_bytes = HIDDEN * 4
    fetch_bytes = {}
    for name, placement in [("block", partition_nodes(m, NODES)),
                            ("searched", searched.placement)]:
        platform = ClusterPlatform(A100_CLUSTER.with_num_nodes(NODES),
                                   placement=placement)
        measured = measured_fetch_bytes(skewed, platform)
        predicted = halo_volumes(skewed, NODES, placement)
        for s in range(NODES):
            for d in range(NODES):
                assert measured.get((s, d), 0) == predicted[s, d] * row_bytes
        fetch_bytes[name] = sum(measured.values())

    makespan_block, _ = epoch_makespan(graph, skewed, "block")
    makespan_search, trainer = epoch_makespan(graph, skewed, "search")
    reported = trainer.placement_result

    # Single node, flat: the search is a no-op and must change nothing.
    single = load_dataset(DATASET, scale=min(scale, 0.1), seed=5)

    def single_epoch(policy):
        model = build_model("gcn", [single.feature_dim, HIDDEN,
                                    single.num_classes],
                            np.random.default_rng(7))
        trainer = HongTuTrainer(
            single, model, MultiGPUPlatform(A100_SERVER),
            HongTuConfig(num_chunks=NUM_CHUNKS, placement=policy, seed=0),
            optimizer=SGD(model.parameters(), lr=0.02))
        return trainer.train_epoch().epoch_seconds

    return {
        "rows_block": reported.rows_block,
        "rows_search": reported.rows_search,
        "fetch_bytes_block": fetch_bytes["block"],
        "fetch_bytes_searched": fetch_bytes["searched"],
        "makespan_block": makespan_block,
        "makespan_search": makespan_search,
        "swaps": reported.swaps,
        "single_block": single_epoch("block"),
        "single_search": single_epoch("search"),
    }


def build_table(measured):
    rows = [
        ["block", f"{measured['rows_block']:,}",
         f"{measured['fetch_bytes_block']:,}",
         f"{measured['makespan_block']:.6f}", "-"],
        ["searched", f"{measured['rows_search']:,}",
         f"{measured['fetch_bytes_searched']:,}",
         f"{measured['makespan_search']:.6f}",
         f"{measured['swaps']} swaps"],
    ]
    saved = measured["rows_block"] - measured["rows_search"]
    return render_table(
        ["placement", "predicted net rows", "measured fetch bytes",
         "epoch makespan s", "search"],
        rows,
        title=f"Placement search ({DATASET}, {NODES}x{GPUS_PER_NODE} GPUs, "
              f"spine {OVERSUBSCRIPTION:.0f}x, round-robin skew): "
              f"{saved:,} cross-node rows removed per epoch-layer",
    )


def check_placement(measured):
    # Acceptance: strictly fewer cross-node halo rows, byte-exact
    # executor agreement (asserted inside run_placement), and a no-op
    # single-node search (float-identical makespans).
    assert measured["rows_search"] < measured["rows_block"]
    assert measured["fetch_bytes_searched"] < measured["fetch_bytes_block"]
    assert measured["makespan_search"] <= measured["makespan_block"]
    assert measured["single_block"] == measured["single_search"]


def _json_metrics(measured):
    """Simulated, lower-is-better metrics for the regression harness."""
    return {
        "rows_block": measured["rows_block"],
        "rows_search": measured["rows_search"],
        "makespan_block_seconds": measured["makespan_block"],
        "makespan_search_seconds": measured["makespan_search"],
    }


def bench_placement_search(benchmark):
    # No emit_json here: JSON metrics are reserved for the benches CI
    # actually reruns (the smoke set), so a stray full-scale results
    # file can never enter the regression baseline via --update.
    measured = benchmark.pedantic(run_placement, rounds=1, iterations=1)
    emit("placement_search", build_table(measured))
    check_placement(measured)


def bench_placement_smoke(benchmark):
    measured, wall = timed_call(
        benchmark.pedantic, run_placement, kwargs={"scale": 0.08},
        rounds=1, iterations=1)
    emit("placement_smoke", build_table(measured))
    emit_json("placement_smoke",
              {**_json_metrics(measured), "sim_wall_seconds": wall},
              step="Benchmark smoke (topology sweep + placement search + joint)")
    check_placement(measured)

"""Table 6 — comparison with multi-GPU systems on 4 (simulated) A100s.

Rows: Sancus (all-in-GPU, broadcast-style communication), HongTu-IM
(all-in-GPU, P2P), HongTu, and DistDGL (sampled mini-batch), running GCN on
all five graphs at increasing depth.

Expected shape (paper): on the small graphs everything runs and HongTu pays
a modest offloading overhead vs the in-memory systems; on the three large
graphs Sancus/HongTu-IM OOM while HongTu trains them; DistDGL's runtime
grows superlinearly with depth (neighbor explosion) and eventually OOMs.
"""

from repro.baselines import (
    InMemoryMultiGPUTrainer,
    MiniBatchTrainer,
)
from repro.bench import (
    bench_model,
    capacity_limited_platform,
    render_table,
    run_or_oom,
)
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

SMALL = ["reddit_sim", "products_sim"]
LARGE = ["it2004_sim", "papers_sim", "friendster_sim"]
#: (small-graph layers, large-graph layers) per table row
LAYER_ROWS = [(2, 2), (4, 3), (8, 4)]
HIDDEN_SMALL, HIDDEN_LARGE = 256, 128
#: per-GPU capacity as a fraction of the full working-set estimate —
#: the paper's A100s hold roughly this share of the big graphs' data
CAPACITY_FRACTION_LARGE = 0.12
NUM_CHUNKS = {"reddit_sim": 1, "products_sim": 1, "it2004_sim": 8,
              "papers_sim": 16, "friendster_sim": 16}


def run_cell(system, dataset, layers):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    hidden = HIDDEN_SMALL if dataset in SMALL else HIDDEN_LARGE
    model = bench_model("gcn", graph, layers, hidden, seed=1)
    platform = (MultiGPUPlatform(A100_SERVER) if dataset in SMALL
                else capacity_limited_platform(
                    graph, model, CAPACITY_FRACTION_LARGE))

    if system == "Sancus":
        return run_or_oom(system, lambda: InMemoryMultiGPUTrainer(
            graph, model, platform, comm_overhead=1.3), epochs=1)
    if system == "HongTu-IM":
        return run_or_oom(system, lambda: InMemoryMultiGPUTrainer(
            graph, model, platform), epochs=1)
    if system == "HongTu":
        chunks = NUM_CHUNKS[dataset] * max(layers // 2, 1)
        return run_or_oom(system, lambda: HongTuTrainer(
            graph, model, platform,
            HongTuConfig(num_chunks=chunks, seed=0)), epochs=1)
    if system == "DistDGL":
        # Paper config: fanout 10, batch 1024 at 10^8 vertices. Batch and
        # fanout shrink with the stand-ins so the frontier:|V| ratio stays
        # comparable.
        batch = 256 if dataset in SMALL else 64
        fanout = 10 if dataset in SMALL else 5
        return run_or_oom(system, lambda: MiniBatchTrainer(
            graph, model, platform, fanout=fanout, batch_size=batch),
            epochs=1)
    raise ValueError(system)


def build_table():
    datasets = SMALL + LARGE
    rows = []
    outcomes = {}
    for small_layers, large_layers in LAYER_ROWS:
        for system in ["Sancus", "HongTu-IM", "HongTu", "DistDGL"]:
            row = [f"{small_layers}/{large_layers}", system]
            for dataset in datasets:
                layers = small_layers if dataset in SMALL else large_layers
                outcome = run_cell(system, dataset, layers)
                outcomes[(small_layers, system, dataset)] = outcome
                row.append(outcome.cell())
            rows.append(row)
    table = render_table(
        ["Layers", "System", "RDT", "OPT", "IT", "OPR", "FDS"],
        rows,
        title="Table 6: multi-GPU comparison (GCN, simulated epoch "
              "seconds on 4 GPUs)",
    )
    return table, outcomes


def bench_table6_multigpu(benchmark):
    table, outcomes = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table6_multigpu", table)

    for small_layers, _ in LAYER_ROWS:
        # HongTu runs everywhere.
        for dataset in SMALL + LARGE:
            assert not outcomes[(small_layers, "HongTu", dataset)].oom
        # In-memory systems OOM on every large graph.
        for dataset in LARGE:
            assert outcomes[(small_layers, "Sancus", dataset)].oom
            assert outcomes[(small_layers, "HongTu-IM", dataset)].oom
        # ...but run (and beat HongTu) on the small graphs.
        for dataset in SMALL:
            inmemory = outcomes[(small_layers, "HongTu-IM", dataset)]
            hongtu = outcomes[(small_layers, "HongTu", dataset)]
            assert not inmemory.oom
            assert inmemory.epoch_seconds < hongtu.epoch_seconds

    # DistDGL neighbor explosion: at stand-in scale the sampled frontier
    # saturates at |V| after ~2 hops, so the explosion shows primarily in
    # the resident frontier *memory* (geometric until saturation) while
    # time keeps growing with depth.
    for dataset in SMALL:
        shallow = outcomes[(2, "DistDGL", dataset)]
        deep = outcomes[(8, "DistDGL", dataset)]
        if not (shallow.oom or deep.oom):
            assert deep.peak_bytes > 3 * shallow.peak_bytes
            assert deep.epoch_seconds > 1.5 * shallow.epoch_seconds
    # On the capacity-limited large graphs the deepest DistDGL configs run
    # out of memory (paper: OOM at 4 layers on it-2004/friendster).
    assert any(outcomes[(8, "DistDGL", dataset)].oom for dataset in LARGE)

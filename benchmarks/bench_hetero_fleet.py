"""Mixed-generation fleet: capability-aware vs capability-blind placement.

The heterogeneous-fleet refactor threads per-node capability profiles
(:data:`repro.hardware.spec.NODE_SPECS`) through the cost model, the
placement search and the trainer. This benchmark measures the piece that
justifies the plumbing: on a 2:1 mixed fleet (two A100 nodes, one
previous-generation V100 node) a placement search that *sees* the
per-node compute rates should beat one that only minimizes cross-node
halo rows, because METIS vertex-balanced partitions of a power-law graph
have skewed per-partition flops — the aware search steers heavy-kernel
partitions onto the fast nodes and eats a few extra halo rows to do it.

``bench_hetero_fleet_smoke`` runs both searches on the same partition of
the ``friendster_sim`` power-law graph and asserts the capability-aware
epoch makespan strictly beats the capability-blind one; both makespans
plus ``sim_wall_seconds`` are archived into the bench-regression
harness.

``python benchmarks/bench_hetero_fleet.py`` prints the comparison table
at full bench scale.
"""

import argparse

import numpy as np

from repro.bench import format_seconds, render_table
from repro.comm.cost_model import ClusterCostModel
from repro.core import HongTuConfig, HongTuTrainer
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import A100_CLUSTER, A100_SERVER, V100_SERVER, \
    ClusterPlatform
from repro.partition import search_placement, two_level_partition

from benchmarks._common import emit, emit_json, timed_call

DATASET = "friendster_sim"
#: at larger scales METIS evens out per-partition flops and both
#: searches converge to the same assignment; 0.2 keeps the skew that
#: makes the capability question interesting.
SCALE = 0.2
HIDDEN = 128
NUM_CHUNKS = 2
NODES = 3
GPUS_PER_NODE = 2
SEED = 3

STEP = "Benchmark smoke (heterogeneous fleet, capability-aware placement)"


def build_fleet():
    """A 2:1 mixed-generation cluster: 2 A100 nodes + 1 V100 node."""
    a100 = A100_SERVER.with_num_gpus(GPUS_PER_NODE)
    v100 = V100_SERVER.with_num_gpus(GPUS_PER_NODE)
    return A100_CLUSTER.with_num_nodes(NODES) \
        .with_node_specs((a100, a100, v100))


def run_fleet(scale=SCALE):
    """Epoch results for blind vs aware placement on the same partition.

    Both trainers share the graph, model weights, partition and config;
    they differ only in how partitions were assigned to nodes:

    * **blind** — ``search_placement`` *without* the compute matrix
      (cross-node halo rows only; the pre-refactor objective), installed
      on the platform before the trainer is built;
    * **aware** — the trainer's ``placement="search"`` path, which on a
      heterogeneous platform prices each partition's kernels at the
      owning node's rate alongside the halo rows.
    """
    cluster = build_fleet()
    graph = load_dataset(DATASET, scale=scale, seed=2)
    num_gpus = NODES * GPUS_PER_NODE
    partition = two_level_partition(graph, num_gpus, NUM_CHUNKS, seed=SEED)
    dims = [graph.feature_dim, HIDDEN, graph.num_classes]
    row_bytes = max(dims) * 4

    config = HongTuConfig(num_chunks=NUM_CHUNKS, overlap="pipeline",
                          nodes=NODES, placement="block", seed=0)
    blind_platform = ClusterPlatform(cluster)
    blind = search_placement(
        partition, NODES,
        cluster_model=ClusterCostModel.from_cluster(cluster),
        row_bytes=row_bytes,
    )
    blind_platform.set_placement(blind.placement)
    blind_trainer = HongTuTrainer(
        graph, build_model("gcn", dims, np.random.default_rng(7)),
        blind_platform, config, partition=partition,
    )
    blind_epoch = blind_trainer.train_epoch()

    aware_platform = ClusterPlatform(cluster)
    aware_config = HongTuConfig(num_chunks=NUM_CHUNKS, overlap="pipeline",
                                nodes=NODES, placement="search", seed=0)
    aware_trainer = HongTuTrainer(
        graph, build_model("gcn", dims, np.random.default_rng(7)),
        aware_platform, aware_config, partition=partition,
    )
    aware_epoch = aware_trainer.train_epoch()
    return {
        "blind": (blind_trainer, blind_epoch, blind),
        "aware": (aware_trainer, aware_epoch,
                  aware_trainer.placement_result),
    }


def build_table(results, title):
    rows = []
    for label in ("blind", "aware"):
        trainer, epoch, placed = results[label]
        rows.append([
            label,
            str(placed.placement.tolist() if placed is not None
                else trainer.placement.tolist()),
            f"{placed.rows_search:,}" if placed is not None else "-",
            format_seconds(epoch.epoch_seconds),
        ])
    return render_table(
        ["placement", "assignment", "halo rows", "epoch makespan"],
        rows, title=title,
    )


# ----------------------------------------------------------------------
# CI smoke: capability-aware strictly beats capability-blind
# ----------------------------------------------------------------------
def check_fleet(results):
    _, blind_epoch, _ = results["blind"]
    aware_trainer, aware_epoch, _ = results["aware"]
    # The aware search saw per-node rates (the trainer built a compute
    # matrix) and its makespan must strictly beat the rows-only search.
    assert aware_trainer.placement_compute_rows is not None
    assert aware_epoch.epoch_seconds < blind_epoch.epoch_seconds
    blind_epoch.timeline.validate()
    aware_epoch.timeline.validate()


def bench_hetero_fleet_smoke(benchmark):
    results, wall = timed_call(
        benchmark.pedantic, run_fleet, kwargs={"scale": SCALE},
        rounds=1, iterations=1)
    emit("hetero_fleet_smoke", build_table(
        results,
        title=f"Heterogeneous fleet smoke ({DATASET}, 2xA100 + 1xV100 "
              f"nodes, {GPUS_PER_NODE} GPUs each)",
    ))
    emit_json("hetero_fleet_smoke", {
        "blind_makespan_seconds": results["blind"][1].epoch_seconds,
        "aware_makespan_seconds": results["aware"][1].epoch_seconds,
        "sim_wall_seconds": wall,
    }, step=STEP)
    check_fleet(results)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Capability-aware vs blind placement on a 2:1 "
                    "mixed-generation fleet")
    parser.add_argument("--scale", type=float, default=SCALE)
    args = parser.parse_args(argv)
    results = run_fleet(scale=args.scale)
    emit("hetero_fleet", build_table(
        results,
        title=f"Heterogeneous fleet ({DATASET} @ {args.scale}, "
              f"2xA100 + 1xV100 nodes, {GPUS_PER_NODE} GPUs each)",
    ))
    blind_seconds = results["blind"][1].epoch_seconds
    aware_seconds = results["aware"][1].epoch_seconds
    print(f"capability-aware makespan is "
          f"{blind_seconds / aware_seconds:.3f}x better")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation — recomputation-caching-hybrid vs pure recomputation (§4.2).

Runs GCN (cacheable aggregate) and GAT (non-cacheable) under both
intermediate-data policies and reports epoch time, host-GPU traffic and GPU
kernel time.

Expected shape: for GCN the hybrid policy removes the backward re-gather of
the neighbor set (big H2D saving under the vanilla transfer pattern) and
the O(|E|) re-aggregation kernels; for GAT the two policies coincide —
HongTu falls back to recomputation because caching O(|E|) attention
intermediates would cost more than recomputing them.
"""

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

DATASET = "papers_sim"
CHUNKS = 12
HIDDEN = 128


def run_policy(arch, policy, comm_mode="baseline"):
    graph = load_dataset(DATASET, scale=BENCH_SCALE)
    model = bench_model(arch, graph, 3, HIDDEN, seed=1)
    trainer = HongTuTrainer(
        graph, model, MultiGPUPlatform(A100_SERVER),
        HongTuConfig(num_chunks=CHUNKS, intermediate_policy=policy,
                     comm_mode=comm_mode, seed=0),
    )
    return trainer.train_epoch()


def run_all():
    results = {}
    for arch in ["gcn", "gat"]:
        for policy in ["hybrid", "recompute"]:
            results[(arch, policy)] = run_policy(arch, policy)
    return results


def build_table(results):
    rows = []
    for (arch, policy), result in results.items():
        rows.append([
            arch, policy,
            f"{result.epoch_seconds:.5f}",
            f"{result.h2d_bytes}",
            f"{result.d2h_bytes}",
            f"{result.clock.seconds['gpu']:.6f}",
        ])
    return render_table(
        ["Arch", "Policy", "Epoch s", "H2D bytes", "D2H bytes", "GPU s"],
        rows,
        title="Ablation: recomputation-caching-hybrid vs pure recompute "
              "(vanilla transfers, 3 layers)",
    )


def bench_ablation_recompute(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_recompute", build_table(results))

    gcn_hybrid = results[("gcn", "hybrid")]
    gcn_recompute = results[("gcn", "recompute")]
    # Caching saves both traffic and kernels for the cacheable model.
    assert gcn_hybrid.h2d_bytes < gcn_recompute.h2d_bytes
    assert gcn_hybrid.clock.seconds["gpu"] < \
        gcn_recompute.clock.seconds["gpu"]
    assert gcn_hybrid.epoch_seconds < gcn_recompute.epoch_seconds

    # Hybrid writes checkpoints back to the host, but its D2H stays within
    # the writeback volume both policies already pay.
    assert gcn_hybrid.d2h_bytes >= gcn_recompute.d2h_bytes

    # GAT falls back to recomputation either way: identical numbers.
    gat_hybrid = results[("gat", "hybrid")]
    gat_recompute = results[("gat", "recompute")]
    assert gat_hybrid.h2d_bytes == gat_recompute.h2d_bytes
    assert gat_hybrid.d2h_bytes == gat_recompute.d2h_bytes
    assert abs(gat_hybrid.epoch_seconds
               - gat_recompute.epoch_seconds) < 1e-12

"""Figure 10 — runtime and memory versus chunk count.

Runs GCN on each large graph with the initial chunk count of §7.1, then 2x,
3x and 4x as many chunks, reporting per-epoch time and peak GPU memory
normalized to the initial configuration.

Expected shape (paper): 4x chunks cut memory by 51-65 % while runtime grows
1.5-2.2x, sublinearly — memory trades against (mostly) communication time.
"""

from repro.bench import bench_model, render_table
from repro.core import HongTuConfig, HongTuTrainer
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform

from benchmarks._common import BENCH_SCALE, emit

#: initial chunk counts (paper: IT=8, OPR=32, FDS=32; scaled to stand-ins)
INITIAL = {"it2004_sim": 4, "papers_sim": 8, "friendster_sim": 8}
MULTIPLIERS = [1, 2, 3, 4]
HIDDEN = 128


def run_sweep():
    results = {}
    for dataset, initial in INITIAL.items():
        graph = load_dataset(dataset, scale=BENCH_SCALE)
        for multiplier in MULTIPLIERS:
            model = bench_model("gcn", graph, 3, HIDDEN, seed=1)
            platform = MultiGPUPlatform(A100_SERVER)
            trainer = HongTuTrainer(
                graph, model, platform,
                HongTuConfig(num_chunks=initial * multiplier, seed=0),
            )
            result = trainer.train_epoch()
            results[(dataset, multiplier)] = (
                result.epoch_seconds, result.peak_gpu_bytes
            )
    return results


def build_table(results):
    rows = []
    for dataset, initial in INITIAL.items():
        base_time, base_memory = results[(dataset, 1)]
        for multiplier in MULTIPLIERS:
            seconds, peak = results[(dataset, multiplier)]
            rows.append([
                dataset, f"{multiplier}x ({initial * multiplier})",
                f"{seconds / base_time:.2f}",
                f"{peak / base_memory:.2f}",
            ])
    return render_table(
        ["Dataset", "Chunks", "Normalized runtime", "Normalized memory"],
        rows,
        title="Figure 10: runtime and peak GPU memory vs chunk count "
              "(normalized to the initial configuration)",
    )


def bench_fig10_chunks(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("fig10_chunks", build_table(results))

    for dataset in INITIAL:
        base_time, base_memory = results[(dataset, 1)]
        time_4x, memory_4x = results[(dataset, 4)]
        # Memory shrinks substantially (paper: 51-65 %)...
        assert memory_4x < 0.75 * base_memory
        # ...while runtime grows, but sublinearly in the chunk multiplier.
        assert base_time < time_4x < 4 * base_time
        # Monotone trends along the sweep.
        memories = [results[(dataset, m)][1] for m in MULTIPLIERS]
        assert all(b <= a for a, b in zip(memories, memories[1:]))

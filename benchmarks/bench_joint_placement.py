"""Joint placement↔schedule iteration — block vs search vs joint.

The single-pass placement search runs once, on the *pre-reorganization*
chunk schedule, and the net-aware reorganization then reorganizes under
that placement. The joint loop (:func:`repro.comm.joint_placement`)
alternates the two until the combined predicted cost (Eq. 4 + net term
+ collective legs) stops improving — so a schedule adopted for one
placement can expose placement moves the first search could not see.

Setup (same adversarial skew as ``bench_placement``): the web-crawl
graph's partitions are relabeled round-robin on a 2-node spine cluster,
and each policy trains one full epoch:

* ``block`` — contiguous placement, net-aware reorganization;
* ``search`` — single-pass search, then reorganization (PR-4 pipeline);
* ``joint`` — the alternation, never worse than ``search`` by
  construction (iteration 1 *is* the single-pass pipeline);
* ``joint ±1`` — the same loop allowed to skew node loads by one
  partition when the per-node host-memory model admits it.

Acceptance, asserted here: epoch makespans satisfy joint <= search <=
block; the executor's measured per-flow halo-fetch bytes equal the
``halo_volumes`` prediction under the joint-adopted placement
byte-for-byte; and the uneven run's placement fits the node budgets it
was given. The ``smoke`` variant archives simulated metrics via
``emit_json`` for the CI bench-regression gate.
"""

import numpy as np

from repro.autograd import SGD
from repro.core import (
    HongTuConfig,
    HongTuTrainer,
    admits_placement,
)
from repro.gnn import build_model
from repro.graph import load_dataset
from repro.hardware import A100_CLUSTER, ClusterPlatform, NetworkTopology
from repro.partition import halo_volumes, permute_partitions, \
    two_level_partition
from repro.bench import render_table

from benchmarks._common import BENCH_SCALE, emit, emit_json, timed_call
from benchmarks.bench_placement import measured_fetch_bytes, skew_perm

DATASET = "it2004_sim"
NODES = 2
GPUS_PER_NODE = 4
NUM_CHUNKS = 4
HIDDEN = 32
OVERSUBSCRIPTION = 4.0
MAX_IMBALANCE = 1


def _cluster():
    topology = NetworkTopology("spine", oversubscription=OVERSUBSCRIPTION)
    return A100_CLUSTER.with_num_nodes(NODES).with_topology(topology)


def train_epoch(graph, partition, policy, max_imbalance=0):
    """One epoch under ``policy``; returns (makespan, trainer)."""
    platform = ClusterPlatform(_cluster(), gpus_per_node=GPUS_PER_NODE)
    model = build_model("gcn", [graph.feature_dim, HIDDEN,
                                graph.num_classes],
                        np.random.default_rng(7))
    trainer = HongTuTrainer(
        graph, model, platform,
        HongTuConfig(num_chunks=NUM_CHUNKS, overlap="pipeline",
                     nodes=NODES, topology="spine",
                     oversubscription=OVERSUBSCRIPTION,
                     placement=policy, max_imbalance=max_imbalance,
                     seed=0),
        optimizer=SGD(model.parameters(), lr=0.02),
        partition=partition,
    )
    result = trainer.train_epoch()
    result.timeline.validate()
    return result.epoch_seconds, trainer


def run_joint(scale=BENCH_SCALE):
    graph = load_dataset(DATASET, scale=scale, seed=5)
    m = NODES * GPUS_PER_NODE
    partition = two_level_partition(graph, m, NUM_CHUNKS, seed=0)
    skewed = permute_partitions(partition, skew_perm(m, NODES))

    makespan_block, _ = train_epoch(graph, skewed, "block")
    makespan_search, search_trainer = train_epoch(graph, skewed, "search")
    makespan_joint, joint_trainer = train_epoch(graph, skewed, "joint")
    makespan_uneven, uneven_trainer = train_epoch(
        graph, skewed, "joint", max_imbalance=MAX_IMBALANCE
    )

    # Byte-contract under the joint-adopted (schedule, placement) pair:
    # the executor must ship exactly the rows the model predicted.
    placed = joint_trainer.placement_result
    adopted = joint_trainer.partition
    row_bytes = HIDDEN * 4
    platform = ClusterPlatform(_cluster(), gpus_per_node=GPUS_PER_NODE,
                               placement=placed.placement)
    measured = measured_fetch_bytes(adopted, platform)
    predicted = halo_volumes(adopted, NODES, placed.placement)
    for s in range(NODES):
        for d in range(NODES):
            assert measured.get((s, d), 0) == predicted[s, d] * row_bytes

    # The uneven run's skew must have been admitted by the host-memory
    # model against the budgets the trainer's search actually ran with
    # (recorded before any allocation, so nothing is double-counted).
    uneven_placed = uneven_trainer.placement_result
    assert admits_placement(
        uneven_placed.placement,
        uneven_trainer.placement_partition_host_bytes,
        uneven_trainer.placement_node_budgets,
    )

    return {
        "rows_block": placed.rows_block,
        "rows_joint": placed.rows_search,
        "rows_search": search_trainer.placement_result.rows_search,
        "rows_uneven": uneven_placed.rows_search,
        "iterations": len(placed.iterations),
        "swaps": placed.swaps,
        "moves_uneven": uneven_placed.moves,
        "uneven_counts": uneven_placed.node_counts,
        "makespan_block": makespan_block,
        "makespan_search": makespan_search,
        "makespan_joint": makespan_joint,
        "makespan_uneven": makespan_uneven,
    }


def build_table(measured):
    rows = [
        ["block", f"{measured['rows_block']:,}",
         f"{measured['makespan_block']:.6f}", "-"],
        ["search", f"{measured['rows_search']:,}",
         f"{measured['makespan_search']:.6f}", "single pass"],
        ["joint", f"{measured['rows_joint']:,}",
         f"{measured['makespan_joint']:.6f}",
         f"{measured['iterations']} iteration(s), "
         f"{measured['swaps']} swaps"],
        [f"joint ±{MAX_IMBALANCE}", f"{measured['rows_uneven']:,}",
         f"{measured['makespan_uneven']:.6f}",
         f"{measured['moves_uneven']} moves, "
         f"counts {measured['uneven_counts']}"],
    ]
    return render_table(
        ["placement", "predicted net rows", "epoch makespan s", "detail"],
        rows,
        title=f"Joint placement↔schedule iteration ({DATASET}, "
              f"{NODES}x{GPUS_PER_NODE} GPUs, spine "
              f"{OVERSUBSCRIPTION:.0f}x, round-robin skew)",
    )


def check_joint(measured):
    # Acceptance: joint never worse than the single-pass search, which
    # never beats it back to block; the byte-exactness and budget
    # admission are asserted inside run_joint.
    assert measured["makespan_joint"] <= measured["makespan_search"]
    assert measured["makespan_search"] <= measured["makespan_block"]
    assert measured["rows_joint"] <= measured["rows_block"]


def _json_metrics(measured):
    """Simulated, lower-is-better metrics for the regression harness."""
    return {
        "rows_joint": measured["rows_joint"],
        "rows_uneven": measured["rows_uneven"],
        "makespan_joint_seconds": measured["makespan_joint"],
        "makespan_uneven_seconds": measured["makespan_uneven"],
    }


def bench_joint_placement(benchmark):
    # No emit_json at full scale: JSON metrics are reserved for the
    # smoke set CI actually reruns (see bench_placement).
    measured = benchmark.pedantic(run_joint, rounds=1, iterations=1)
    emit("joint_placement", build_table(measured))
    check_joint(measured)


def bench_joint_placement_smoke(benchmark):
    measured, wall = timed_call(
        benchmark.pedantic, run_joint, kwargs={"scale": 0.08},
        rounds=1, iterations=1)
    emit("joint_placement_smoke", build_table(measured))
    emit_json("joint_placement_smoke",
              {**_json_metrics(measured), "sim_wall_seconds": wall},
              step="Benchmark smoke (topology sweep + placement search + joint)")
    check_joint(measured)

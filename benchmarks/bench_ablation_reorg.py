"""Ablation — cost-model-guided subgraph reorganization (Algorithm 4).

Starts from a deliberately shuffled chunk schedule (destroying the
range-order locality of the initial partition), then measures the host-GPU
volume and the Eq. 4 cost with and without reorganization.

Expected shape: Algorithm 4 recovers (most of) the locality — lower V⁺ru
and lower Eq. 4 cost than the shuffled schedule — and the cost-model guard
never adopts a layout worse than its input.
"""

import numpy as np

from repro.bench import render_table
from repro.comm import (
    CommCostModel,
    communication_cost,
    measure_volumes,
    reorganize_partition,
)
from repro.graph import load_dataset
from repro.hardware import A100_SERVER, MultiGPUPlatform
from repro.partition import two_level_partition

from benchmarks._common import BENCH_SCALE, emit

DATASETS = ["it2004_sim", "papers_sim", "friendster_sim"]
CHUNKS = 12
ROW_BYTES = 128 * 4


def shuffled_partition(dataset):
    graph = load_dataset(dataset, scale=BENCH_SCALE)
    partition = two_level_partition(graph, 4, CHUNKS, seed=0)
    rng = np.random.default_rng(13)
    for i, row in enumerate(partition.chunks):
        order = rng.permutation(len(row))
        shuffled = [row[k] for k in order]
        for j, chunk in enumerate(shuffled):
            chunk.chunk_id = j
        partition.chunks[i] = shuffled
    return partition


def run_ablation():
    model = CommCostModel.from_platform(MultiGPUPlatform(A100_SERVER))
    results = {}
    for dataset in DATASETS:
        partition = shuffled_partition(dataset)
        before_volumes = measure_volumes(partition)
        before_cost = communication_cost(partition, ROW_BYTES, model)
        outcome = reorganize_partition(partition, cost_model=model,
                                       row_bytes=ROW_BYTES)
        after_volumes = measure_volumes(outcome.partition)
        after_cost = communication_cost(outcome.partition, ROW_BYTES, model)
        results[dataset] = {
            "before_vru": before_volumes.v_ru,
            "after_vru": after_volumes.v_ru,
            "before_cost": before_cost,
            "after_cost": after_cost,
            "kept_original": outcome.kept_original,
        }
    return results


def build_table(results):
    rows = []
    for dataset in DATASETS:
        r = results[dataset]
        rows.append([
            dataset,
            r["before_vru"], r["after_vru"],
            f"{r['before_cost'] * 1e6:.1f}us", f"{r['after_cost'] * 1e6:.1f}us",
            f"{100 * (1 - r['after_cost'] / r['before_cost']):.1f}%",
            r["kept_original"],
        ])
    return render_table(
        ["Dataset", "V+ru before", "V+ru after", "Eq.4 before",
         "Eq.4 after", "cost saved", "kept original"],
        rows,
        title="Ablation: Algorithm 4 reorganization on a shuffled schedule",
    )


def bench_ablation_reorg(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit("ablation_reorg", build_table(results))
    for dataset in DATASETS:
        r = results[dataset]
        assert r["after_cost"] <= r["before_cost"] + 1e-12
    # At least one graph must show a real recovery, not just the guard.
    assert any(results[d]["after_cost"] < 0.95 * results[d]["before_cost"]
               for d in DATASETS)

"""Table 1 — memory consumption of 3-layer full-graph GCN training.

Reproduces, at the paper's true dataset scales (Table 4), the closed-form
topology / vertex-data / intermediate-data breakdown that motivates HongTu:
hundreds of gigabytes per graph, far beyond 4x80 GB of GPU memory.

Paper reference values (GB): it-2004 12.8/177.2/108.3, ogbn-paper
18.0/519.4/425.3, friendster 28.9/293.3/179.3.
"""

from repro.bench import render_table
from repro.core import estimate_training_memory
from repro.graph import PAPER_PROFILES
from repro.hardware import GB

from benchmarks._common import emit

# (dataset, model config string, dims) straight from Table 1.
TABLE1_CONFIGS = [
    ("it-2004", "256-128-128-64", [256, 128, 128, 64]),
    ("ogbn-paper", "200-128-128-172", [200, 128, 128, 172]),
    ("friendster", "256-128-128-64", [256, 128, 128, 64]),
]

PAPER_GB = {
    "it-2004": (12.8, 177.2, 108.3),
    "ogbn-paper": (18.0, 519.4, 425.3),
    "friendster": (28.9, 293.3, 179.3),
}


def build_table() -> str:
    rows = []
    for dataset, config, dims in TABLE1_CONFIGS:
        profile = PAPER_PROFILES[dataset]
        estimate = estimate_training_memory(
            profile.num_vertices, profile.num_edges, dims, arch="gcn"
        )
        gb = estimate.as_gb()
        paper_topology, paper_vertex, paper_intermediate = PAPER_GB[dataset]
        rows.append([
            dataset, config,
            f"{gb['topology_gb']:.1f} ({paper_topology})",
            f"{gb['vertex_data_gb']:.1f} ({paper_vertex})",
            f"{gb['intermediate_gb']:.1f} ({paper_intermediate})",
        ])
    return render_table(
        ["Dataset", "Model Config", "Topology GB (paper)",
         "Vtx Data GB (paper)", "Intr Data GB (paper)"],
        rows,
        title="Table 1: memory of 3-layer full-graph GCN training "
              "(model (paper) values)",
    )


def bench_table1_memory_model(benchmark):
    text = benchmark(build_table)
    emit("table1_memory", text)
    # Shape assertions: every graph far exceeds a single 80 GB GPU, and
    # ogbn-paper exceeds even the aggregate 4x80 GB (the paper's "needs at
    # least 77 A100s" point).
    totals = {}
    for dataset, _, dims in TABLE1_CONFIGS:
        profile = PAPER_PROFILES[dataset]
        estimate = estimate_training_memory(
            profile.num_vertices, profile.num_edges, dims, arch="gcn"
        )
        totals[dataset] = estimate.total_bytes
        assert estimate.total_bytes > 2 * 80 * GB
    assert totals["ogbn-paper"] > 4 * 80 * GB
